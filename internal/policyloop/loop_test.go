package policyloop

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

func startServer(tb testing.TB) string {
	tb.Helper()
	mgr := server.NewManager(server.Config{})
	srv := server.NewTCPServer(mgr, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// renderBox paints a w x h Gray8 frame: flat background, bright 16x16 box
// whose position follows the frame index — enough motion for every scenario
// policy to localize.
func renderBox(fr *rpx.Frame, index int) {
	for i := range fr.Pix {
		fr.Pix[i] = 32
	}
	bx, by := (index*4)%(fr.W-16), (index*2)%(fr.H-16)
	for y := by; y < by+16; y++ {
		for x := bx; x < bx+16; x++ {
			fr.Pix[y*fr.W+x] = 224
		}
	}
}

func TestLoopClosesOverLiveServer(t *testing.T) {
	const w, h = 64, 48
	addr := startServer(t)
	producer, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if err := producer.SetRegionLabels([]rpx.RegionLabel{rpx.FullFrame(w, h)}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	loop, err := New(Config{
		Addr:        addr,
		Target:      producer.ID(),
		Policy:      "motion-skip",
		CycleLength: 2,
		W:           w, H: h, Format: rpx.Gray8,
		Metrics: reg,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- loop.Run(ctx) }()

	// Capture until the loop's workload has demonstrably taken effect over
	// at least two cycles: two distinct applied boundaries and a capture
	// whose pixel fraction dropped below full frame.
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	var steered atomic.Bool
	boundaries := map[uint64]bool{}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("loop never steered the producer: stats %+v, boundaries %v", loop.Stats(), boundaries)
		}
		renderBox(fr, i)
		cs, err := producer.Capture(fr)
		if err != nil {
			t.Fatal(err)
		}
		if cs.PixelFraction < 0.99 {
			steered.Store(true)
		}
		if b := loop.Stats().LastBoundary; b != 0 {
			boundaries[b] = true
		}
		if steered.Load() && len(boundaries) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	st := loop.Stats()
	if st.Frames == 0 || st.Cycles < 2 || st.LabelsPushed < 2 {
		t.Fatalf("loop stats %+v, want >=2 cycles and pushes", st)
	}
	if st.LabelsRejected != 0 {
		t.Fatalf("server rejected %d workloads", st.LabelsRejected)
	}

	// Graceful drain: cancelling the context ends Run with nil.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after cancel = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}

	// The metrics registry saw the same counters.
	found := false
	for _, s := range reg.Gather() {
		if s.Name == "rpxpolicy_cycles_total" && s.Value >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("rpxpolicy_cycles_total missing or zero in the registry")
	}
}

func TestLoopReconnects(t *testing.T) {
	const w, h = 32, 32
	addr := startServer(t)
	producer, err := client.Dial(addr, client.Config{W: w, H: h, Format: rpx.Gray8, Block: true, Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	loop, err := New(Config{
		Addr:   addr,
		Target: producer.ID(),
		Policy: "event-change",
		W:      w, H: h, Format: rpx.Gray8,
		CycleLength: 2,
		Timeout:     500 * time.Millisecond,
		Reconnect:   true,
		MaxRetries:  20,
		Backoff:     10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- loop.Run(ctx) }()

	// Phase 1: frames flow, the loop attaches and cycles.
	fr := rpx.NewFrame(w, h, rpx.Gray8)
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; loop.Stats().Cycles == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("loop never cycled: %+v", loop.Stats())
		}
		renderBox(fr, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// Phase 2: starve the stream past the read timeout so the subscription
	// breaks, then resume captures; the loop must re-attach and cycle again.
	time.Sleep(700 * time.Millisecond)
	base := loop.Stats()
	deadline = time.Now().Add(20 * time.Second)
	for i := 1000; loop.Stats().Cycles <= base.Cycles; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("loop never recovered: %+v (was %+v)", loop.Stats(), base)
		}
		renderBox(fr, i)
		if _, err := producer.Capture(fr); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if loop.Stats().Reconnects == 0 {
		t.Fatalf("loop recovered without counting a reconnect: %+v", loop.Stats())
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run after cancel = %v, want nil", err)
	}
}

func TestNewRejectsUnknownPolicy(t *testing.T) {
	_, err := New(Config{Addr: "x", Target: 1, W: 8, H: 8, Policy: "nope"})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	// The Build error surfaces the registry contents to the operator.
	for _, name := range policy.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestNewValidates(t *testing.T) {
	base := Config{Addr: "x", Target: 1, W: 8, H: 8, Format: rpx.Gray8, Policy: "motion-skip"}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"no addr", func(c *Config) { c.Addr = "" }},
		{"no target", func(c *Config) { c.Target = 0 }},
		{"bad geometry", func(c *Config) { c.W = 0 }},
		{"features need gray", func(c *Config) { c.Features = true; c.Format = rpx.RGB24 }},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
