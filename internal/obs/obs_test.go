package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency", L("op", "enc"))

	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)

	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("Gather returned %d samples, want 3", len(samples))
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if v := byName["test_ops_total"].Value; v != 5 {
		t.Errorf("counter = %v, want 5", v)
	}
	if v := byName["test_depth"].Value; v != 5 {
		t.Errorf("gauge = %v, want 5", v)
	}
	hs := byName["test_latency_seconds"].Hist
	if hs.Count != 2 {
		t.Errorf("histogram count = %d, want 2", hs.Count)
	}
	if got := byName["test_latency_seconds"].Labels; len(got) != 1 || got[0] != L("op", "enc") {
		t.Errorf("histogram labels = %v", got)
	}
}

func TestFuncMetricsReadAtScrape(t *testing.T) {
	r := NewRegistry()
	var n uint64
	r.CounterFunc("test_fn_total", "fn", func() uint64 { return n })
	r.GaugeFunc("test_fn_gauge", "fn", func() float64 { return float64(n) * 2 })
	n = 21
	byName := map[string]float64{}
	for _, s := range r.Gather() {
		byName[s.Name] = s.Value
	}
	if byName["test_fn_total"] != 21 || byName["test_fn_gauge"] != 42 {
		t.Errorf("func metrics = %v, want 21 and 42", byName)
	}
}

func TestCollectDynamicSeries(t *testing.T) {
	r := NewRegistry()
	live := []string{"1", "2"}
	r.Collect(func(emit func(Sample)) {
		for _, id := range live {
			emit(Sample{Name: "test_session_depth", Help: "d", Kind: KindGauge,
				Labels: []Label{L("session", id)}, Value: 3})
		}
	})
	if got := len(r.Gather()); got != 2 {
		t.Fatalf("collector emitted %d samples, want 2", got)
	}
	live = live[:1] // the session went away: the series disappears
	if got := len(r.Gather()); got != 1 {
		t.Fatalf("collector emitted %d samples after eviction, want 1", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_a_total", "a")
	mustPanic("duplicate series", func() { r.Counter("test_a_total", "a") })
	mustPanic("conflicting kind", func() { r.Gauge("test_a_total", "a") })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("bad name chars", func() { r.Counter("has space", "x") })
	// Same family, different labels: allowed.
	r.Counter("test_b_total", "b", L("op", "x"))
	r.Counter("test_b_total", "b", L("op", "y"))
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_frames_total", "Frames captured.")
	c.Add(3)
	h := r.Histogram("test_lat_seconds", "Latency.", L("op", "capture"))
	h.Observe(1 * time.Microsecond) // bucket 0: le = 1e-06
	h.Observe(3 * time.Microsecond) // bucket 2: le = 4e-06

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# HELP test_frames_total Frames captured.",
		"# TYPE test_frames_total counter",
		"test_frames_total 3",
		"# TYPE test_lat_seconds histogram",
		`test_lat_seconds_bucket{op="capture",le="1e-06"} 1`,
		`test_lat_seconds_bucket{op="capture",le="4e-06"} 2`,
		`test_lat_seconds_bucket{op="capture",le="+Inf"} 2`,
		`test_lat_seconds_count{op="capture"} 2`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The family header must appear exactly once even with multiple series.
	r2 := NewRegistry()
	r2.Counter("test_multi_total", "m", L("op", "a")).Inc()
	r2.Counter("test_multi_total", "m", L("op", "b")).Inc()
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "# TYPE test_multi_total counter"); got != 1 {
		t.Errorf("TYPE header appears %d times, want 1:\n%s", got, b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_c_total", "c", L("op", "x")).Add(9)
	r.Histogram("test_h_seconds", "h").Observe(2 * time.Microsecond)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Kind   string            `json:"kind"`
		Labels map[string]string `json:"labels"`
		Value  *float64          `json:"value"`
		Hist   *struct {
			Count uint64 `json:"count"`
		} `json:"hist"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	c, ok := doc[`test_c_total{op="x"}`]
	if !ok || c.Value == nil || *c.Value != 9 || c.Labels["op"] != "x" {
		t.Errorf("counter entry wrong: %+v (doc %v)", c, doc)
	}
	h, ok := doc["test_h_seconds"]
	if !ok || h.Hist == nil || h.Hist.Count != 1 {
		t.Errorf("histogram entry wrong: %+v", h)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "e", L("path", "a\"b\\c\nd")).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

// TestHotPathAllocs pins the acceptance criterion that the registry hot
// path — counter add, gauge set, histogram observe, tracer record — is
// allocation-free per op.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hot_total", "h")
	g := r.Gauge("test_hot_depth", "h")
	h := r.Histogram("test_hot_seconds", "h", L("op", "capture"))
	tr := NewTracer(64)
	span := Span{Session: 1, Frame: 2, Op: SpanPack, Start: 100, Dur: 5, Bytes: 64}

	if n := testing.AllocsPerRun(200, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.Set(11) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { h.Observe(17 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() { tr.Record(span) }); n != 0 {
		t.Errorf("Tracer.Record allocates %v per op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(1024)
	span := Span{Session: 3, Frame: 7, Op: SpanDecode, Start: 1, Dur: 2, Bytes: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		span.Frame = i
		tr.Record(span)
	}
}
