package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Frame-path span operations, in pipeline order: region-label commit at the
// frame boundary, encoder packing, decoder history push, and decode.
const (
	SpanClassify = "classify"
	SpanPack     = "pack"
	SpanPush     = "push"
	SpanDecode   = "decode"
)

// Span is one recorded step of a frame's journey through the pipeline.
type Span struct {
	// Session tags the pipeline that produced the span (the rpxd session id,
	// or 0 for an untagged in-process system).
	Session uint64 `json:"session"`
	// Frame is the temporal index of the frame the span belongs to.
	Frame int `json:"frame"`
	// Op is the pipeline step (SpanClassify, SpanPack, SpanPush, SpanDecode).
	Op string `json:"op"`
	// Start is the wall-clock start in Unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Dur is the step latency in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Bytes is the payload traffic of the step: encoded bytes written for
	// pack, encoded bytes fetched for decode, 0 otherwise.
	Bytes int `json:"bytes"`
}

// DefaultTraceSpans is the tracer ring capacity when none is given.
const DefaultTraceSpans = 512

// Tracer records frame-path spans into a fixed ring buffer: the newest
// spans win, Record never allocates, and the buffer is dumpable on demand
// (Snapshot, WriteJSON — served by rpxd at /debug/trace). Safe for
// concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	total uint64 // spans ever recorded; buf slot is total % len(buf)
}

// NewTracer returns a tracer holding the last capacity spans
// (DefaultTraceSpans when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// Record stores one span, overwriting the oldest when the ring is full.
// It never allocates.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	t.buf[t.total%uint64(len(t.buf))] = s
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot copies the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Tracer) snapshotLocked() []Span {
	n := t.total
	cap64 := uint64(len(t.buf))
	if n > cap64 {
		n = cap64
	}
	out := make([]Span, n)
	start := t.total - n
	for i := uint64(0); i < n; i++ {
		out[i] = t.buf[(start+i)%cap64]
	}
	return out
}

// Reset discards every retained span.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.total = 0
	t.mu.Unlock()
}

// traceDump is the /debug/trace document shape.
type traceDump struct {
	Total    uint64 `json:"total"`
	Capacity int    `json:"capacity"`
	Spans    []Span `json:"spans"`
}

// WriteJSON dumps the retained spans (oldest first) with ring bookkeeping,
// all captured under one lock so total and spans agree.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	total := t.total
	spans := t.snapshotLocked()
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{Total: total, Capacity: len(t.buf), Spans: spans})
}
