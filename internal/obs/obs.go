// Package obs is the observability spine of the repository: a small,
// stdlib-only metrics layer shared by the core pipeline, the rpx public API,
// and the rpxd daemon.
//
// It provides a Registry of counters, gauges, and latency histograms whose
// mutation paths are atomic and allocation-free — an encoder worker or a
// session goroutine can bump a counter or observe a latency on every frame
// without ever touching the allocator or a lock — plus two exposition
// formats rendered on demand from the same samples: the Prometheus text
// format (WritePrometheus, served by rpxd at /metrics) and a JSON document
// (WriteJSON, served at /debug/vars).
//
// Registration happens at setup time and may allocate; it supports both
// value-holding instruments (Counter, Gauge, Histogram) and function-backed
// ones (CounterFunc, GaugeFunc) that read an existing atomic or snapshot at
// scrape time, so subsystems with their own counters (rpx.System,
// server.Manager) expose them without double bookkeeping. Dynamic sets of
// metrics — per-session series that appear and disappear with the session —
// are emitted by Collect callbacks run at scrape time.
//
// The companion Tracer (trace.go) records per-frame pipeline spans into a
// fixed ring buffer, dumpable as JSON at /debug/trace.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric for exposition.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready to
// use; Add and Inc are atomic and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use;
// Set and Add are atomic and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Sample is one metric series at one scrape: identity (name + labels),
// family metadata (help + kind), and either a scalar value or a histogram
// snapshot. Collect callbacks emit Samples; Gather returns them.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value carries counter and gauge samples.
	Value float64
	// Hist carries histogram samples (Kind == KindHistogram).
	Hist HistogramSnapshot
}

// static is one registered metric series.
type static struct {
	name   string
	labels []Label

	counter   *Counter
	gauge     *Gauge
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Histogram
}

// family is the per-name metadata every series of that name must agree on.
type family struct {
	help string
	kind Kind
}

// Registry holds registered metrics and renders expositions. Registration
// methods and Gather are safe for concurrent use; the instruments they
// return are independent of the registry lock.
type Registry struct {
	mu         sync.Mutex
	families   map[string]family
	seen       map[string]struct{} // name + rendered labels, for dup detection
	static     []static
	collectors []func(emit func(Sample))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]family),
		seen:     make(map[string]struct{}),
	}
}

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, KindCounter, labels, static{counter: c})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for subsystems that already keep their own atomic counter.
// fn must be safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, KindCounter, labels, static{counterFn: fn})
}

// Gauge registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, labels, static{gauge: g})
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time. fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels, static{gaugeFn: fn})
}

// Histogram registers and returns a new latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram registers an existing histogram (one a subsystem already
// observes into) under the given series identity.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, KindHistogram, labels, static{hist: h})
}

// Collect registers a callback run at every scrape; it emits dynamic
// samples (for example one series per live session). Emitted samples must
// carry a valid name, help, and kind; series identity need not be stable
// across scrapes. fn must be safe to call concurrently.
func (r *Registry) Collect(fn func(emit func(Sample))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// register validates and records one static series.
func (r *Registry) register(name, help string, kind Kind, labels []Label, s static) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	s.name = name
	s.labels = sortedLabels(labels)
	id := name + renderLabels(s.labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	if fam, ok := r.families[name]; ok {
		if fam.kind != kind || fam.help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered with conflicting kind or help", name))
		}
	} else {
		r.families[name] = family{help: help, kind: kind}
	}
	if _, dup := r.seen[id]; dup {
		panic(fmt.Sprintf("obs: duplicate metric series %s", id))
	}
	r.seen[id] = struct{}{}
	r.static = append(r.static, s)
}

// Gather snapshots every registered series plus collector emissions,
// sorted by name then labels. It allocates; it is the scrape path, not the
// hot path.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	statics := make([]static, len(r.static))
	copy(statics, r.static)
	fams := make(map[string]family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	collectors := make([]func(emit func(Sample)), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	samples := make([]Sample, 0, len(statics))
	for _, s := range statics {
		fam := fams[s.name]
		out := Sample{Name: s.name, Help: fam.help, Kind: fam.kind, Labels: s.labels}
		switch {
		case s.counter != nil:
			out.Value = float64(s.counter.Load())
		case s.counterFn != nil:
			out.Value = float64(s.counterFn())
		case s.gauge != nil:
			out.Value = float64(s.gauge.Load())
		case s.gaugeFn != nil:
			out.Value = s.gaugeFn()
		case s.hist != nil:
			out.Hist = s.hist.Snapshot()
		}
		samples = append(samples, out)
	}
	for _, fn := range collectors {
		fn(func(s Sample) {
			s.Labels = sortedLabels(s.Labels)
			samples = append(samples, s)
		})
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return renderLabels(samples[i].Labels) < renderLabels(samples[j].Labels)
	})
	return samples
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// sortedLabels returns a copy of labels sorted by key.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
