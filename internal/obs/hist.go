package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential latency buckets: bucket i counts
// observations in (2^(i-1), 2^i] microseconds, so the histogram spans 1 µs
// to ~4.3 s with the last bucket absorbing the tail.
const histBuckets = 32

// Histogram is a fixed-shape latency histogram with atomic buckets, safe
// for concurrent Observe and Snapshot without locks — the shape per-op
// stats need so a metrics scrape never stalls a worker. The zero value is
// ready to use. (Absorbed from internal/server, which now aliases it.)
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	i := 0
	for us > 1<<i && i < histBuckets-1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-friendly
// for the rpxd STATS wire reply and the /debug/vars exposition.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// SumNanos is the total observed latency.
	SumNanos int64 `json:"sum_ns"`
	// MaxNanos is the largest single observation.
	MaxNanos int64 `json:"max_ns"`
	// Buckets[i] counts observations in the per-range interval
	// (UpperMicros[i-1], UpperMicros[i]] — bucket 0 covers [0, 1µs]. The
	// counts are NOT cumulative; sum a prefix to get "at or below".
	Buckets []uint64 `json:"buckets,omitempty"`
	// UpperMicros[i] is the inclusive upper bound of bucket i in µs.
	UpperMicros []int64 `json:"upper_us,omitempty"`
}

// Snapshot copies the histogram. Concurrent Observe calls may land between
// bucket reads; totals stay self-consistent enough for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sumNs.Load(),
		MaxNanos: h.maxNs.Load(),
	}
	// Trim trailing empty buckets so the JSON stays compact.
	last := -1
	var raw [histBuckets]uint64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
		if raw[i] > 0 {
			last = i
		}
	}
	if last < 0 {
		return s
	}
	s.Buckets = make([]uint64, last+1)
	s.UpperMicros = make([]int64, last+1)
	for i := 0; i <= last; i++ {
		s.Buckets[i] = raw[i]
		s.UpperMicros[i] = 1 << i
	}
	return s
}

// MeanNanos returns the mean latency in nanoseconds (0 when empty).
func (s HistogramSnapshot) MeanNanos() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNanos / int64(s.Count)
}

// QuantileMicros returns an upper-bound estimate of the q-quantile (0..1)
// in microseconds, from the bucket boundaries.
func (s HistogramSnapshot) QuantileMicros(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return s.UpperMicros[i]
		}
	}
	return s.UpperMicros[len(s.UpperMicros)-1]
}
