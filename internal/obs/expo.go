package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every gathered sample in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per metric
// family followed by its series. Histograms render as classic cumulative
// _bucket{le=...} series plus _sum and _count, with bucket bounds converted
// from the histogram's microsecond ranges to seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	var b strings.Builder
	prevName := ""
	for _, s := range samples {
		if s.Name != prevName {
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
			prevName = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			writePromHistogram(&b, s)
		default:
			b.WriteString(s.Name)
			b.WriteString(renderLabels(s.Labels))
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets in
// seconds, then sum and count.
func writePromHistogram(b *strings.Builder, s Sample) {
	var cum uint64
	for i, c := range s.Hist.Buckets {
		cum += c
		le := float64(s.Hist.UpperMicros[i]) / 1e6
		b.WriteString(s.Name)
		b.WriteString("_bucket")
		b.WriteString(renderLabelsExtra(s.Labels, Label{Key: "le", Value: formatFloat(le)}))
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(s.Name)
	b.WriteString("_bucket")
	b.WriteString(renderLabelsExtra(s.Labels, Label{Key: "le", Value: "+Inf"}))
	fmt.Fprintf(b, " %d\n", s.Hist.Count)
	b.WriteString(s.Name)
	b.WriteString("_sum")
	b.WriteString(renderLabels(s.Labels))
	fmt.Fprintf(b, " %s\n", formatFloat(float64(s.Hist.SumNanos)/1e9))
	b.WriteString(s.Name)
	b.WriteString("_count")
	b.WriteString(renderLabels(s.Labels))
	fmt.Fprintf(b, " %d\n", s.Hist.Count)
}

// jsonMetric is one series in the /debug/vars document.
type jsonMetric struct {
	Kind   string             `json:"kind"`
	Labels map[string]string  `json:"labels,omitempty"`
	Value  *float64           `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

// WriteJSON renders every gathered sample as one JSON object keyed by
// series identity ("name" or `name{label="v"}`), the document rpxd serves
// at /debug/vars. Keys marshal in sorted order, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Gather()
	doc := make(map[string]jsonMetric, len(samples))
	for _, s := range samples {
		m := jsonMetric{Kind: s.Kind.String()}
		if len(s.Labels) > 0 {
			m.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				m.Labels[l.Key] = l.Value
			}
		}
		if s.Kind == KindHistogram {
			h := s.Hist
			m.Hist = &h
		} else {
			v := s.Value
			m.Value = &v
		}
		doc[s.Name+renderLabels(s.Labels)] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// renderLabels renders a sorted label set as {k1="v1",k2="v2"}, or "" when
// empty.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderLabelsExtra renders labels plus one appended label (the histogram
// `le` bound, which sorts after the series labels by convention).
func renderLabelsExtra(labels []Label, extra Label) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, extra)
	return renderLabels(all)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a help string per the text exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value compactly (integers without a
// fractional part).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
