package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Frame: i, Op: SpanPack})
	}
	if tr.Total() != 6 {
		t.Errorf("Total = %d, want 6", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Frame != i+2 { // oldest retained is frame 2
			t.Errorf("spans[%d].Frame = %d, want %d", i, s.Frame, i+2)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Frame: 0, Op: SpanClassify})
	tr.Record(Span{Frame: 0, Op: SpanPack, Bytes: 128})
	spans := tr.Snapshot()
	if len(spans) != 2 || spans[0].Op != SpanClassify || spans[1].Bytes != 128 {
		t.Errorf("snapshot = %+v", spans)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Session: 9, Frame: 1, Op: SpanDecode, Start: 10, Dur: 20, Bytes: 30})
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total    uint64 `json:"total"`
		Capacity int    `json:"capacity"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal(b.Bytes(), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if dump.Total != 1 || dump.Capacity != 4 || len(dump.Spans) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if s := dump.Spans[0]; s.Session != 9 || s.Op != SpanDecode || s.Bytes != 30 {
		t.Errorf("span = %+v", s)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Frame: 1})
	tr.Reset()
	if tr.Total() != 0 || len(tr.Snapshot()) != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Span{Session: uint64(g), Frame: i, Op: SpanPush})
				if i%10 == 0 {
					tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 400 {
		t.Errorf("Total = %d, want 400", tr.Total())
	}
}
