package kalman

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestFirstUpdateInitializes(t *testing.T) {
	f := New(0.1, 1)
	if f.Initialized() {
		t.Error("fresh filter reports initialized")
	}
	// Predict before init is a no-op at origin.
	if x, y := f.Predict(); x != 0 || y != 0 {
		t.Error("pre-init predict moved")
	}
	f.Update(10, 20)
	if !f.Initialized() {
		t.Error("not initialized after update")
	}
	x, y, vx, vy := f.State()
	if x != 10 || y != 20 || vx != 0 || vy != 0 {
		t.Errorf("state = %v %v %v %v", x, y, vx, vy)
	}
}

func TestTracksConstantVelocity(t *testing.T) {
	f := New(0.05, 1)
	// Object moves at (2, -1) px/frame with noise.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		zx := 2*float64(i) + rng.NormFloat64()*0.5
		zy := -1*float64(i) + rng.NormFloat64()*0.5
		f.Predict()
		f.Update(zx, zy)
	}
	px, py := f.Predict()
	// After 60 frames the prediction for frame 60 should be near (120, -60).
	if math.Abs(px-120) > 3 || math.Abs(py+60) > 3 {
		t.Errorf("prediction (%v, %v), want ~(120, -60)", px, py)
	}
	_, _, vx, vy := f.State()
	if math.Abs(vx-2) > 0.3 || math.Abs(vy+1) > 0.3 {
		t.Errorf("velocity (%v, %v), want ~(2, -1)", vx, vy)
	}
}

func TestUncertaintyShrinksWithObservations(t *testing.T) {
	f := New(0.05, 4)
	f.Update(0, 0)
	u0 := f.Uncertainty()
	for i := 1; i <= 20; i++ {
		f.Predict()
		f.Update(float64(i), 0)
	}
	u1 := f.Uncertainty()
	if u1 >= u0 {
		t.Errorf("uncertainty %v did not shrink from %v", u1, u0)
	}
	if u1 <= 0 {
		t.Error("uncertainty must stay positive")
	}
}

func TestUncertaintyGrowsWithoutObservations(t *testing.T) {
	f := New(0.5, 1)
	f.Update(0, 0)
	f.Predict()
	f.Update(1, 0)
	u0 := f.Uncertainty()
	for i := 0; i < 10; i++ {
		f.Predict() // coast without measurements
	}
	if f.Uncertainty() <= u0 {
		t.Errorf("uncertainty %v did not grow from %v while coasting", f.Uncertainty(), u0)
	}
}

func TestPredictionCoastsOnVelocity(t *testing.T) {
	f := New(0.01, 0.5)
	for i := 0; i < 30; i++ {
		f.Predict()
		f.Update(float64(3*i), 0)
	}
	// Coast 5 frames: position should advance ~3/frame.
	x0, _, _, _ := f.State()
	for i := 0; i < 5; i++ {
		f.Predict()
	}
	x1, _, _, _ := f.State()
	if math.Abs((x1-x0)-15) > 2 {
		t.Errorf("coasted %v px in 5 frames, want ~15", x1-x0)
	}
}
