// Package kalman provides a constant-velocity Kalman filter over 2D
// positions, the prediction strategy the paper suggests for region selection
// policies ("e.g., with Kalman filters", §4.3.1): given noisy observations
// of a tracked object's center, it predicts where the region should be
// placed on the next frame and how uncertain that placement is.
package kalman

import "math"

// Filter2D tracks state [x, y, vx, vy] with a constant-velocity model.
type Filter2D struct {
	// x is the state estimate.
	x [4]float64
	// p is the state covariance (row-major 4x4).
	p [16]float64
	// q is process noise intensity; r is measurement noise variance.
	q, r float64

	initialized bool
}

// New returns a filter with process noise q (acceleration variance) and
// measurement noise r (observation variance, pixels^2).
func New(q, r float64) *Filter2D {
	if q <= 0 || r <= 0 {
		panic("kalman: noise parameters must be positive")
	}
	return &Filter2D{q: q, r: r}
}

// Initialized reports whether the filter has received an observation.
func (f *Filter2D) Initialized() bool { return f.initialized }

// State returns position and velocity estimates.
func (f *Filter2D) State() (x, y, vx, vy float64) {
	return f.x[0], f.x[1], f.x[2], f.x[3]
}

// Uncertainty returns the positional standard deviation (the geometric mean
// of the x/y position sigmas), which policies use to inflate region margins.
func (f *Filter2D) Uncertainty() float64 {
	// sigma = sqrt(geometric mean of the x/y position variances).
	return math.Pow(f.p[0]*f.p[5], 0.25)
}

// Predict advances the state one frame and returns the predicted position.
func (f *Filter2D) Predict() (x, y float64) {
	if !f.initialized {
		return f.x[0], f.x[1]
	}
	// x' = F x with F = [[1,0,1,0],[0,1,0,1],[0,0,1,0],[0,0,0,1]].
	f.x[0] += f.x[2]
	f.x[1] += f.x[3]
	// P' = F P F^T + Q.
	var fp [16]float64
	ff := [16]float64{
		1, 0, 1, 0,
		0, 1, 0, 1,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	mul4(&fp, &ff, &f.p)
	var ft [16]float64
	transpose4(&ft, &ff)
	var newP [16]float64
	mul4(&newP, &fp, &ft)
	// Q for constant-velocity with unit dt.
	q := f.q
	qm := [16]float64{
		q / 4, 0, q / 2, 0,
		0, q / 4, 0, q / 2,
		q / 2, 0, q, 0,
		0, q / 2, 0, q,
	}
	for i := range newP {
		newP[i] += qm[i]
	}
	f.p = newP
	return f.x[0], f.x[1]
}

// Update incorporates an observed position.
func (f *Filter2D) Update(zx, zy float64) {
	if !f.initialized {
		f.x = [4]float64{zx, zy, 0, 0}
		f.p = [16]float64{
			f.r, 0, 0, 0,
			0, f.r, 0, 0,
			0, 0, 100, 0,
			0, 0, 0, 100,
		}
		f.initialized = true
		return
	}
	// Innovation.
	yx := zx - f.x[0]
	yy := zy - f.x[1]
	// S = H P H^T + R reduces to the top-left 2x2 of P plus R on the
	// diagonal since H selects position.
	s00 := f.p[0] + f.r
	s01 := f.p[1]
	s10 := f.p[4]
	s11 := f.p[5] + f.r
	det := s00*s11 - s01*s10
	if det == 0 {
		return
	}
	i00, i01, i10, i11 := s11/det, -s01/det, -s10/det, s00/det
	// K = P H^T S^-1: 4x2.
	var k [8]float64
	for r := 0; r < 4; r++ {
		ph0 := f.p[r*4+0]
		ph1 := f.p[r*4+1]
		k[r*2+0] = ph0*i00 + ph1*i10
		k[r*2+1] = ph0*i01 + ph1*i11
	}
	for r := 0; r < 4; r++ {
		f.x[r] += k[r*2]*yx + k[r*2+1]*yy
	}
	// P = (I - K H) P.
	var kh [16]float64
	for r := 0; r < 4; r++ {
		kh[r*4+0] = k[r*2+0]
		kh[r*4+1] = k[r*2+1]
	}
	var ikh [16]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := -kh[i*4+j]
			if i == j {
				v += 1
			}
			ikh[i*4+j] = v
		}
	}
	var newP [16]float64
	mul4(&newP, &ikh, &f.p)
	f.p = newP
}

func mul4(dst, a, b *[16]float64) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += a[i*4+k] * b[k*4+j]
			}
			dst[i*4+j] = s
		}
	}
}

func transpose4(dst, a *[16]float64) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dst[i*4+j] = a[j*4+i]
		}
	}
}
