package sensor

import (
	"testing"

	"repro/internal/frame"
)

func TestCRC16KnownVectors(t *testing.T) {
	// CRC-16/X-25 (reflected CCITT, init 0xFFFF, no final xor here):
	// the classic "123456789" check value for X-25 is 0x906E before the
	// final complement; without the xorout it is ^0x906E = 0x6F91.
	if got := crc16CSI([]byte("123456789")); got != 0x6F91 {
		t.Errorf("crc16(123456789) = %#04x, want 0x6F91", got)
	}
	if got := crc16CSI(nil); got != 0xFFFF {
		t.Errorf("crc16(empty) = %#04x, want init 0xFFFF", got)
	}
	// Sensitivity: one flipped bit changes the CRC.
	a := crc16CSI([]byte{1, 2, 3, 4})
	b := crc16CSI([]byte{1, 2, 3, 5})
	if a == b {
		t.Error("CRC insensitive to payload change")
	}
}

func TestPacketWireBytes(t *testing.T) {
	if (Packet{Kind: PacketFrameStart}).WireBytes() != 4 {
		t.Error("short packet size wrong")
	}
	p := Packet{Kind: PacketLine, PayloadBytes: 100}
	if p.WireBytes() != 106 {
		t.Errorf("line packet = %d bytes, want 106", p.WireBytes())
	}
	if PacketFrameStart.String() != "FS" || PacketLine.String() != "LINE" {
		t.Error("packet kind names wrong")
	}
}

func TestTransferFrameStructure(t *testing.T) {
	l := NewCSILink()
	fr := frame.New(64, 8, frame.Gray8)
	for i := range fr.Pix {
		fr.Pix[i] = uint8(i)
	}
	var lines [][]byte
	for y := 0; y < fr.H; y++ {
		lines = append(lines, fr.Pix[y*64:(y+1)*64])
	}
	ft, packets := l.TransferFrame(lines)
	if ft.Packets != 10 { // FS + 8 lines + FE
		t.Errorf("Packets = %d, want 10", ft.Packets)
	}
	if ft.PayloadBytes != 64*8 {
		t.Errorf("PayloadBytes = %d", ft.PayloadBytes)
	}
	// Overhead: 2 short packets (8) + 8 * (4+2) = 56.
	if ft.OverheadBytes != 56 {
		t.Errorf("OverheadBytes = %d, want 56", ft.OverheadBytes)
	}
	if ft.OverheadFraction() <= 0 || ft.OverheadFraction() > 0.2 {
		t.Errorf("OverheadFraction = %v", ft.OverheadFraction())
	}
	if ft.Seconds <= 0 {
		t.Error("non-positive transfer time")
	}
	if l.BytesTransferred() != int64(ft.TotalBytes()) {
		t.Error("link counter not updated")
	}
	// First and last packets frame the transmission.
	if packets[0].Kind != PacketFrameStart || packets[len(packets)-1].Kind != PacketFrameEnd {
		t.Error("framing packets wrong")
	}
	// Every line packet verifies against its payload.
	for i, p := range packets[1 : len(packets)-1] {
		if err := VerifyPacket(p, lines[i]); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
}

func TestVerifyPacketDetectsCorruption(t *testing.T) {
	l := NewCSILink()
	line := []byte{10, 20, 30, 40}
	_, packets := l.TransferFrame([][]byte{line})
	p := packets[1]
	corrupt := []byte{10, 20, 31, 40}
	if err := VerifyPacket(p, corrupt); err == nil {
		t.Error("corrupted payload passed CRC")
	}
	if err := VerifyPacket(p, line[:3]); err == nil {
		t.Error("short payload accepted")
	}
	// Short packets always verify.
	if err := VerifyPacket(packets[0], nil); err != nil {
		t.Error(err)
	}
}

func TestOverheadFractionEmpty(t *testing.T) {
	var ft FrameTransfer
	if ft.OverheadFraction() != 0 {
		t.Error("empty transfer overhead fraction != 0")
	}
}
