// Package sensor simulates a mobile-class image sensor and its camera
// serial interface: the substrate that stands in for the Sony IMX274 + MIPI
// CSI-2 front end of the paper's FPGA platform (Table 2).
//
// The simulation covers what the rhythmic pixel system actually depends on:
// a Bayer color filter array sampled from an RGB scene, photon/read noise,
// strictly raster-scan line-by-line readout, and a lane-serialized CSI link
// whose transferred-byte count feeds the energy model.
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/frame"
)

// Config describes the simulated sensor.
type Config struct {
	W, H int
	// FPS is the sensor frame rate.
	FPS float64
	// ReadNoiseSigma is the standard deviation of additive Gaussian read
	// noise in 8-bit code units (typical mobile sensors: 1-3).
	ReadNoiseSigma float64
	// AnalogGain scales the signal before quantization (1.0 = unity).
	AnalogGain float64
	// Seed makes the noise deterministic for reproducible experiments.
	Seed int64
}

// Sensor converts RGB scene frames into noisy Bayer mosaics and streams
// them out in raster order.
type Sensor struct {
	cfg Config
	rng *rand.Rand

	framesCaptured int
}

// New returns a sensor. Zero-valued gain defaults to unity.
func New(cfg Config) (*Sensor, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("sensor: invalid dimensions %dx%d", cfg.W, cfg.H)
	}
	if cfg.W%2 != 0 || cfg.H%2 != 0 {
		return nil, fmt.Errorf("sensor: Bayer mosaic requires even dimensions, got %dx%d", cfg.W, cfg.H)
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("sensor: invalid frame rate %v", cfg.FPS)
	}
	if cfg.AnalogGain == 0 {
		cfg.AnalogGain = 1
	}
	if cfg.AnalogGain < 0 || cfg.ReadNoiseSigma < 0 {
		return nil, fmt.Errorf("sensor: negative gain or noise")
	}
	return &Sensor{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the sensor configuration.
func (s *Sensor) Config() Config { return s.cfg }

// FramesCaptured returns the number of Capture calls.
func (s *Sensor) FramesCaptured() int { return s.framesCaptured }

// Capture samples an RGB (or grayscale, treated as neutral) scene into a
// BayerRGGB mosaic with gain and read noise applied. The scene must match
// the sensor dimensions.
func (s *Sensor) Capture(scene *frame.Frame) (*frame.Frame, error) {
	if scene.W != s.cfg.W || scene.H != s.cfg.H {
		return nil, fmt.Errorf("sensor: scene is %dx%d, sensor is %dx%d", scene.W, scene.H, s.cfg.W, s.cfg.H)
	}
	out := frame.New(s.cfg.W, s.cfg.H, frame.BayerRGGB)
	for y := 0; y < s.cfg.H; y++ {
		for x := 0; x < s.cfg.W; x++ {
			var v float64
			switch scene.Format {
			case frame.RGB24:
				p := scene.Pixel(x, y)
				switch bayerChannel(x, y) {
				case 0:
					v = float64(p[0])
				case 1:
					v = float64(p[1])
				default:
					v = float64(p[2])
				}
			default:
				v = float64(scene.Gray(x, y))
			}
			v = v*s.cfg.AnalogGain + s.rng.NormFloat64()*s.cfg.ReadNoiseSigma
			out.Pix[y*s.cfg.W+x] = clamp255(v)
		}
	}
	s.framesCaptured++
	return out, nil
}

// bayerChannel returns 0 for red, 1 for green, 2 for blue sites in an RGGB
// tiling.
func bayerChannel(x, y int) int {
	switch {
	case y%2 == 0 && x%2 == 0:
		return 0 // R
	case y%2 == 1 && x%2 == 1:
		return 2 // B
	default:
		return 1 // G
	}
}

// Stream delivers a captured frame line by line in raster order, the only
// readout pattern conventional sensors provide — the property the rhythmic
// encoder's streaming design exploits.
func (s *Sensor) Stream(fr *frame.Frame, emit func(y int, line []byte)) {
	stride := fr.Stride()
	for y := 0; y < fr.H; y++ {
		emit(y, fr.Pix[y*stride:(y+1)*stride])
	}
}

func clamp255(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// CSILink models a MIPI CSI-2 style serial camera link: a fixed number of
// lanes at a per-lane bit rate, counting transferred bytes for the energy
// model and checking real-time feasibility.
type CSILink struct {
	Lanes       int
	GbpsPerLane float64
	// PacketOverhead is the fractional protocol overhead (headers, ECC,
	// line start/end short packets); CSI-2 is typically a few percent.
	PacketOverhead float64

	bytesTransferred int64
}

// NewCSILink returns a 4-lane link at 1.5 Gbps/lane with 5% overhead — the
// class of link a 4K60 mobile sensor uses.
func NewCSILink() *CSILink { return &CSILink{Lanes: 4, GbpsPerLane: 1.5, PacketOverhead: 0.05} }

// Bandwidth returns usable link bandwidth in bytes per second.
func (l *CSILink) Bandwidth() float64 {
	return float64(l.Lanes) * l.GbpsPerLane * 1e9 / 8 * (1 - l.PacketOverhead)
}

// Transfer records a frame's transit and returns the transfer time in
// seconds.
func (l *CSILink) Transfer(bytes int) float64 {
	if bytes < 0 {
		panic("sensor: negative transfer")
	}
	l.bytesTransferred += int64(bytes)
	return float64(bytes) / l.Bandwidth()
}

// BytesTransferred returns the cumulative traffic over the link.
func (l *CSILink) BytesTransferred() int64 { return l.bytesTransferred }

// SupportsRate reports whether a w x h stream of bpp-byte pixels at fps fits
// the link.
func (l *CSILink) SupportsRate(w, h, bpp int, fps float64) bool {
	need := float64(w) * float64(h) * float64(bpp) * fps
	return need <= l.Bandwidth()
}

// ExposureSeries returns per-frame exposure scale factors simulating a
// slow sinusoidal auto-exposure hunt, used by failure-injection tests to
// check policy robustness under illumination variation.
func ExposureSeries(frames int, amplitude float64) []float64 {
	out := make([]float64, frames)
	for i := range out {
		out[i] = 1 + amplitude*math.Sin(2*math.Pi*float64(i)/60)
	}
	return out
}
