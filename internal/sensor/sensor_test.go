package sensor

import (
	"testing"

	"repro/internal/frame"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{W: 0, H: 10, FPS: 30},
		{W: 10, H: 0, FPS: 30},
		{W: 11, H: 10, FPS: 30}, // odd width
		{W: 10, H: 10, FPS: 0},
		{W: 10, H: 10, FPS: 30, ReadNoiseSigma: -1},
		{W: 10, H: 10, FPS: 30, AnalogGain: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	s, err := New(Config{W: 8, H: 8, FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().AnalogGain != 1 {
		t.Error("zero gain should default to unity")
	}
}

func TestCaptureBayerPattern(t *testing.T) {
	s, err := New(Config{W: 4, H: 4, FPS: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scene := frame.New(4, 4, frame.RGB24)
	// Pure red scene: only R sites (even row, even col) should be bright.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			scene.SetPixel(x, y, []byte{200, 0, 0})
		}
	}
	bayer, err := s.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	if bayer.Format != frame.BayerRGGB {
		t.Fatalf("format = %v", bayer.Format)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			v := bayer.Gray(x, y)
			if y%2 == 0 && x%2 == 0 {
				if v < 190 {
					t.Errorf("R site (%d,%d) = %d, want ~200", x, y, v)
				}
			} else if v > 10 {
				t.Errorf("non-R site (%d,%d) = %d, want ~0", x, y, v)
			}
		}
	}
	if s.FramesCaptured() != 1 {
		t.Error("FramesCaptured not incremented")
	}
}

func TestCaptureRejectsWrongSize(t *testing.T) {
	s, _ := New(Config{W: 8, H: 8, FPS: 30})
	if _, err := s.Capture(frame.New(4, 4, frame.RGB24)); err == nil {
		t.Error("wrong-size scene accepted")
	}
}

func TestCaptureNoiseDeterministic(t *testing.T) {
	scene := frame.New(8, 8, frame.Gray8)
	scene.Fill(128)
	a, _ := New(Config{W: 8, H: 8, FPS: 30, ReadNoiseSigma: 2, Seed: 42})
	b, _ := New(Config{W: 8, H: 8, FPS: 30, ReadNoiseSigma: 2, Seed: 42})
	fa, _ := a.Capture(scene)
	fb, _ := b.Capture(scene)
	if !fa.Equal(fb) {
		t.Error("same seed should produce identical noise")
	}
	c, _ := New(Config{W: 8, H: 8, FPS: 30, ReadNoiseSigma: 2, Seed: 43})
	fc, _ := c.Capture(scene)
	if fa.Equal(fc) {
		t.Error("different seeds should differ")
	}
}

func TestCaptureGainClamps(t *testing.T) {
	scene := frame.New(8, 8, frame.Gray8)
	scene.Fill(200)
	s, _ := New(Config{W: 8, H: 8, FPS: 30, AnalogGain: 2})
	fr, _ := s.Capture(scene)
	for _, v := range fr.Pix {
		if v != 255 {
			t.Fatalf("gain 2 on 200 should clamp to 255, got %d", v)
		}
	}
}

func TestStreamRasterOrder(t *testing.T) {
	s, _ := New(Config{W: 4, H: 3, FPS: 30})
	fr := frame.New(4, 3, frame.BayerRGGB)
	for i := range fr.Pix {
		fr.Pix[i] = uint8(i)
	}
	var rows []int
	s.Stream(fr, func(y int, line []byte) {
		rows = append(rows, y)
		if len(line) != 4 {
			t.Errorf("row %d length %d", y, len(line))
		}
		if line[0] != uint8(y*4) {
			t.Errorf("row %d starts with %d, want %d", y, line[0], y*4)
		}
	})
	if len(rows) != 3 || rows[0] != 0 || rows[2] != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestCSILink(t *testing.T) {
	l := NewCSILink()
	// 4 lanes x 1.5 Gbps x 95% = 712.5 MB/s.
	if bw := l.Bandwidth(); bw < 700e6 || bw > 720e6 {
		t.Errorf("Bandwidth = %v", bw)
	}
	// 4K60 at 1 byte/px = 498 MB/s: supported.
	if !l.SupportsRate(3840, 2160, 1, 60) {
		t.Error("4K60 gray should fit the link")
	}
	// 4K60 RGB = 1.49 GB/s: not supported.
	if l.SupportsRate(3840, 2160, 3, 60) {
		t.Error("4K60 RGB should exceed the link")
	}
	dt := l.Transfer(1000)
	if dt <= 0 {
		t.Error("transfer time should be positive")
	}
	if l.BytesTransferred() != 1000 {
		t.Errorf("BytesTransferred = %d", l.BytesTransferred())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	l.Transfer(-1)
}

func TestExposureSeries(t *testing.T) {
	s := ExposureSeries(120, 0.2)
	if len(s) != 120 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v < 0.79 || v > 1.21 {
			t.Fatalf("exposure[%d] = %v outside [0.8,1.2]", i, v)
		}
	}
	if s[0] != 1 {
		t.Errorf("series should start at unity, got %v", s[0])
	}
}
