package sensor

import "fmt"

// Packet-level MIPI CSI-2 model. The byte-level CSILink suffices for energy
// accounting; this layer adds the protocol structure — frame-start/end
// short packets, per-line long packets with header, ECC, and checksum — so
// link overhead and error behaviour can be studied, and so the future-work
// "encoder inside the camera" analysis can count real packet savings.

// CSI-2 packet framing constants.
const (
	// ShortPacketBytes is the size of FS/FE/LS/LE short packets: 4 bytes
	// (data ID, 16-bit data field, ECC).
	ShortPacketBytes = 4
	// LongPacketHeaderBytes is the packet header: data ID, 16-bit word
	// count, ECC.
	LongPacketHeaderBytes = 4
	// LongPacketFooterBytes is the 16-bit payload checksum.
	LongPacketFooterBytes = 2
)

// PacketKind enumerates the modeled CSI-2 packet types.
type PacketKind uint8

// Packet kinds.
const (
	PacketFrameStart PacketKind = iota
	PacketFrameEnd
	PacketLine
)

// String names the packet kind.
func (k PacketKind) String() string {
	switch k {
	case PacketFrameStart:
		return "FS"
	case PacketFrameEnd:
		return "FE"
	case PacketLine:
		return "LINE"
	}
	return fmt.Sprintf("PacketKind(%d)", uint8(k))
}

// Packet is one transmitted CSI-2 packet.
type Packet struct {
	Kind PacketKind
	// PayloadBytes is the pixel payload of line packets (0 for short
	// packets).
	PayloadBytes int
	// Checksum is the CRC-16 of the payload for line packets.
	Checksum uint16
}

// WireBytes returns the packet's total size on the wire.
func (p Packet) WireBytes() int {
	if p.Kind != PacketLine {
		return ShortPacketBytes
	}
	return LongPacketHeaderBytes + p.PayloadBytes + LongPacketFooterBytes
}

// crc16CSI computes the CRC-16 used by CSI-2 payload checksums
// (polynomial x^16 + x^12 + x^5 + 1, CCITT, reflected, init 0xFFFF).
func crc16CSI(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// FrameTransfer summarizes one frame's transit over the link.
type FrameTransfer struct {
	Packets       int
	PayloadBytes  int
	OverheadBytes int
	// Seconds is the transfer time at the link's configured bandwidth.
	Seconds float64
}

// TotalBytes returns payload plus protocol overhead.
func (ft FrameTransfer) TotalBytes() int { return ft.PayloadBytes + ft.OverheadBytes }

// OverheadFraction returns protocol overhead / total.
func (ft FrameTransfer) OverheadFraction() float64 {
	t := ft.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(ft.OverheadBytes) / float64(t)
}

// TransferFrame models a full raster frame crossing the link as CSI-2
// packets: FS, one line packet per row, FE. The line payload checksum is
// computed over the actual pixel bytes, exercising the same data the
// encoder will consume. Accumulates into the link's byte counter.
func (l *CSILink) TransferFrame(lines [][]byte) (FrameTransfer, []Packet) {
	packets := make([]Packet, 0, len(lines)+2)
	packets = append(packets, Packet{Kind: PacketFrameStart})
	var ft FrameTransfer
	for _, line := range lines {
		p := Packet{Kind: PacketLine, PayloadBytes: len(line), Checksum: crc16CSI(line)}
		packets = append(packets, p)
		ft.PayloadBytes += len(line)
	}
	packets = append(packets, Packet{Kind: PacketFrameEnd})
	for _, p := range packets {
		ft.OverheadBytes += p.WireBytes() - p.PayloadBytes
	}
	ft.Packets = len(packets)
	// Raw wire bytes; Transfer applies the configured bandwidth (its
	// PacketOverhead models lane/protocol costs below this layer, so pass
	// the structural bytes through directly).
	ft.Seconds = float64(ft.TotalBytes()) / l.Bandwidth()
	l.bytesTransferred += int64(ft.TotalBytes())
	return ft, packets
}

// VerifyPacket recomputes a line packet's checksum against a received
// payload, reporting corruption as the receiver would.
func VerifyPacket(p Packet, payload []byte) error {
	if p.Kind != PacketLine {
		return nil
	}
	if len(payload) != p.PayloadBytes {
		return fmt.Errorf("sensor: payload is %d bytes, packet declares %d", len(payload), p.PayloadBytes)
	}
	if got := crc16CSI(payload); got != p.Checksum {
		return fmt.Errorf("sensor: payload CRC %#04x != packet CRC %#04x", got, p.Checksum)
	}
	return nil
}
