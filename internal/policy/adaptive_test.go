package policy

import (
	"testing"

	"repro/internal/region"
)

func TestAdaptiveCycleValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"minZero":  func() { NewAdaptiveCycle(0, 10, 100, 100, 4, nil) },
		"inverted": func() { NewAdaptiveCycle(10, 5, 100, 100, 4, nil) },
		"badFast":  func() { NewAdaptiveCycle(5, 10, 100, 100, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveCycleShrinksUnderMotion(t *testing.T) {
	a := NewAdaptiveCycle(5, 20, 320, 240, 4, nil)
	if a.CurrentCycle() != 20 {
		t.Errorf("initial cycle = %d, want MaxCycle", a.CurrentCycle())
	}
	// Sustained fast motion drives the cycle to the minimum.
	for i := 0; i < 30; i++ {
		a.ObserveMotion(10)
	}
	if a.CurrentCycle() != 5 {
		t.Errorf("cycle under fast motion = %d, want 5", a.CurrentCycle())
	}
	// A static stretch relaxes it back.
	for i := 0; i < 50; i++ {
		a.ObserveMotion(0)
	}
	if a.CurrentCycle() != 20 {
		t.Errorf("cycle after static stretch = %d, want 20", a.CurrentCycle())
	}
	// Negative motion is clamped.
	a.ObserveMotion(-5)
	if a.CurrentCycle() < 5 || a.CurrentCycle() > 20 {
		t.Errorf("cycle out of bounds: %d", a.CurrentCycle())
	}
}

func TestAdaptiveCycleFullCaptureCadence(t *testing.T) {
	src := SourceFunc(func(int) region.List {
		return region.List{{X: 0, Y: 0, W: 10, H: 10, Stride: 1, Skip: 1}}
	})
	a := NewAdaptiveCycle(3, 6, 320, 240, 4, src)
	fulls := 0
	for f := 0; f < 24; f++ {
		a.ObserveMotion(10) // fast: cycle 3
		ls := a.Labels(f)
		if len(ls) == 1 && ls[0].W == 320 {
			fulls++
		}
	}
	// Cycle 3 over 24 frames: a full capture roughly every 3 frames.
	if fulls < 7 || fulls > 9 {
		t.Errorf("full captures = %d, want ~8 at cycle 3", fulls)
	}

	b := NewAdaptiveCycle(3, 6, 320, 240, 4, src)
	fulls = 0
	for f := 0; f < 24; f++ {
		b.ObserveMotion(0) // static: cycle 6
		ls := b.Labels(f)
		if len(ls) == 1 && ls[0].W == 320 {
			fulls++
		}
	}
	if fulls < 4 || fulls > 5 {
		t.Errorf("full captures = %d, want ~4 at cycle 6", fulls)
	}
}

func TestAdaptiveCycleNilSource(t *testing.T) {
	a := NewAdaptiveCycle(2, 4, 100, 100, 4, nil)
	a.Labels(0) // full
	if got := a.Labels(1); got != nil {
		t.Errorf("nil source intermediate labels = %v", got)
	}
}
