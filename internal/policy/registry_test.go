package policy

import (
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/region"
	"repro/internal/synth"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"feature-cycle", "box-cycle", "predictive", "adaptive-cycle"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in policy %q not registered (have %v)", want, names)
		}
		desc, ok := Describe(want)
		if !ok || desc == "" {
			t.Errorf("%q has no description", want)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Error("unknown policy described")
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", 100, 100, 10); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown build err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	for name, m := range map[string]Maker{
		"empty name": {New: func(int, int, int) Policy { return nil }},
		"nil ctor":   {Name: "x"},
		"duplicate":  {Name: "feature-cycle", New: func(int, int, int) Policy { return nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			Register(m)
		}()
	}
}

func TestFeatureCyclePolicyLoop(t *testing.T) {
	p, err := Build("feature-cycle", 320, 240, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0: full capture before any observation.
	ls := p.Labels(0)
	if len(ls) != 1 || ls[0].W != 320 {
		t.Fatalf("frame 0 = %v", ls)
	}
	p.Observe(Feedback{
		KeyPoints:        []features.KeyPoint{{X: 100, Y: 100, Size: 31}},
		MeanDisplacement: 5,
	})
	ls = p.Labels(1)
	if len(ls) != 1 || ls[0].W == 320 {
		t.Fatalf("frame 1 = %v, want one feature region", ls)
	}
	if err := region.List(ls).Validate(320, 240); err != nil {
		t.Fatal(err)
	}
}

func TestBoxCyclePolicyLoop(t *testing.T) {
	p, err := Build("box-cycle", 320, 240, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(Feedback{Boxes: []synth.Box{{X: 50, Y: 50, W: 40, H: 40}}, BoxVelocities: []float64{2}})
	ls := p.Labels(1)
	if len(ls) != 1 || ls[0].W <= 40 {
		t.Fatalf("frame 1 = %v, want one inflated box region", ls)
	}
}

func TestPredictivePolicyLoop(t *testing.T) {
	p, err := Build("predictive", 320, 240, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Observe(Feedback{Boxes: []synth.Box{{X: 50 + 3*i, Y: 50, W: 30, H: 30}}})
	}
	ls := p.Labels(1)
	if len(ls) != 1 {
		t.Fatalf("labels = %v", ls)
	}
	// Prediction leads the last observation.
	if cx := ls[0].X + ls[0].W/2; cx < 77 {
		t.Errorf("predicted center %d, want ahead of 77", cx)
	}
}

func TestAdaptiveCyclePolicyLoop(t *testing.T) {
	p, err := Build("adaptive-cycle", 320, 240, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained fast motion shortens the cycle: count full captures over a
	// window with fast vs slow feedback.
	countFulls := func(disp float64) int {
		pol, _ := Build("adaptive-cycle", 320, 240, 10)
		fulls := 0
		for f := 0; f < 40; f++ {
			pol.Observe(Feedback{
				KeyPoints:        []features.KeyPoint{{X: 100, Y: 100, Size: 31}},
				MeanDisplacement: disp,
			})
			ls := pol.Labels(f)
			if len(ls) == 1 && ls[0].W == 320 {
				fulls++
			}
		}
		return fulls
	}
	fast, slow := countFulls(20), countFulls(0)
	if fast <= slow {
		t.Errorf("fast motion fulls %d <= slow %d; cycle not adapting", fast, slow)
	}
	_ = p
}
