package policy

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/region"
)

// DefaultMotionTile is the change-energy grid pitch in pixels.
const DefaultMotionTile = 16

// MotionMap is a per-tile change-energy grid: the mean absolute byte
// difference between two consecutive decoded frames, one cell per Tile x
// Tile pixel block. It is the frame-differencing substrate the scenario
// policies share — a software stand-in for the motion metadata an
// intelligent-skipping sensor (arXiv:2409.17341) or an event camera
// (arXiv:2206.04341) would deliver for free.
type MotionMap struct {
	// FrameW, FrameH are the pixel dimensions the map covers.
	FrameW, FrameH int
	// Tile is the cell pitch in pixels (edge cells may be smaller).
	Tile int
	// Cols, Rows are the grid dimensions.
	Cols, Rows int
	// Energy is the row-major grid: mean absolute byte delta per cell, in
	// [0, 255]. All zeros until the first Update.
	Energy []float64
}

// NewMotionMap returns a zeroed grid for a w x h frame (tile <= 0 selects
// DefaultMotionTile).
func NewMotionMap(w, h, tile int) *MotionMap {
	if tile <= 0 {
		tile = DefaultMotionTile
	}
	cols, rows := (w+tile-1)/tile, (h+tile-1)/tile
	return &MotionMap{
		FrameW: w, FrameH: h,
		Tile: tile, Cols: cols, Rows: rows,
		Energy: make([]float64, cols*rows),
	}
}

// At returns the cell's energy.
func (m *MotionMap) At(col, row int) float64 { return m.Energy[row*m.Cols+col] }

// Update recomputes the grid from two consecutive frames of the map's
// geometry. Differencing runs over raw bytes, so every channel of a
// multi-channel format contributes.
func (m *MotionMap) Update(prev, cur *frame.Frame) error {
	if prev.W != m.FrameW || prev.H != m.FrameH || cur.W != m.FrameW || cur.H != m.FrameH {
		return fmt.Errorf("policy: motion map is %dx%d, frames are %dx%d and %dx%d",
			m.FrameW, m.FrameH, prev.W, prev.H, cur.W, cur.H)
	}
	if prev.Format != cur.Format {
		return fmt.Errorf("policy: motion frames disagree on format: %v vs %v", prev.Format, cur.Format)
	}
	sum := make([]float64, len(m.Energy))
	count := make([]int, len(m.Energy))
	bpp := cur.BytesPerPixel()
	stride := cur.Stride()
	for y := 0; y < m.FrameH; y++ {
		rowBase := (y / m.Tile) * m.Cols
		pr := prev.Pix[y*stride : (y+1)*stride]
		cr := cur.Pix[y*stride : (y+1)*stride]
		for x := 0; x < m.FrameW; x++ {
			cell := rowBase + x/m.Tile
			off := x * bpp
			for c := 0; c < bpp; c++ {
				d := int(cr[off+c]) - int(pr[off+c])
				if d < 0 {
					d = -d
				}
				sum[cell] += float64(d)
			}
			count[cell] += bpp
		}
	}
	for i := range m.Energy {
		if count[i] > 0 {
			m.Energy[i] = sum[i] / float64(count[i])
		} else {
			m.Energy[i] = 0
		}
	}
	return nil
}

// Max returns the largest cell energy.
func (m *MotionMap) Max() float64 {
	max := 0.0
	for _, e := range m.Energy {
		if e > max {
			max = e
		}
	}
	return max
}

// tileLabel builds one clipped label covering the grid cells [c0, c1] of
// row r with the given sampling parameters.
func (m *MotionMap) tileLabel(c0, c1, r, stride, skip int) (region.Label, bool) {
	x := c0 * m.Tile
	y := r * m.Tile
	w := (c1 - c0 + 1) * m.Tile
	if x+w > m.FrameW {
		w = m.FrameW - x
	}
	h := m.Tile
	if y+h > m.FrameH {
		h = m.FrameH - y
	}
	return region.Clip(region.Label{
		X: x, Y: y, W: w, H: h,
		Stride: stride,
		Skip:   skip,
		Phase:  phaseFor(x, y, skip),
	}, m.FrameW, m.FrameH)
}
