package policy

import (
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/frame"
	"repro/internal/region"
)

// motionFrames builds two frames where only the rectangle (bx, by, bw, bh)
// differs — a synthetic moving box for the change-energy grid.
func motionFrames(w, h, bx, by, bw, bh int) (prev, cur *frame.Frame) {
	prev = frame.New(w, h, frame.Gray8)
	cur = frame.New(w, h, frame.Gray8)
	for y := by; y < by+bh && y < h; y++ {
		for x := bx; x < bx+bw && x < w; x++ {
			cur.Pix[y*w+x] = 200
		}
	}
	return prev, cur
}

func TestMotionMapUpdate(t *testing.T) {
	const w, h, tile = 64, 48, 16
	m := NewMotionMap(w, h, tile)
	if m.Cols != 4 || m.Rows != 3 {
		t.Fatalf("grid is %dx%d, want 4x3", m.Cols, m.Rows)
	}
	prev, cur := motionFrames(w, h, 0, 0, tile, tile)
	if err := m.Update(prev, cur); err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 200 {
		t.Fatalf("changed tile energy = %v, want 200", got)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if (c != 0 || r != 0) && m.At(c, r) != 0 {
				t.Fatalf("static tile (%d,%d) has energy %v", c, r, m.At(c, r))
			}
		}
	}
	// Geometry mismatches are rejected.
	if err := m.Update(frame.New(8, 8, frame.Gray8), cur); err == nil {
		t.Fatal("accepted mismatched frame")
	}
}

func TestMotionMapRaggedEdge(t *testing.T) {
	// 50x30 with 16px tiles: edge cells are 2 and 14 px — energies must
	// still normalize per cell, and tileLabel must clip to the frame.
	m := NewMotionMap(50, 30, 16)
	prev, cur := motionFrames(50, 30, 48, 16, 2, 14)
	if err := m.Update(prev, cur); err != nil {
		t.Fatal(err)
	}
	if got := m.At(3, 1); got != 200 {
		t.Fatalf("ragged tile energy = %v, want 200 (per-cell normalization broken)", got)
	}
	l, ok := m.tileLabel(3, 3, 1, 1, 1)
	if !ok || l.X+l.W > 50 || l.Y+l.H > 30 {
		t.Fatalf("ragged tile label %+v escapes the 50x30 frame", l)
	}
}

// scenarioLabels drives one scenario policy through a moving-box
// observation and returns its intermediate-frame (non-full-capture) labels.
func scenarioLabels(t *testing.T, name string, w, h, cl int) region.List {
	t.Helper()
	p, err := Build(name, w, h, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Before any observation: full frame, the discovery default.
	if ls := p.Labels(1); len(ls) != 1 || ls[0].W != w || ls[0].H != h {
		t.Fatalf("%s pre-observation labels = %v, want full frame", name, ls)
	}
	m := NewMotionMap(w, h, 16)
	prev, cur := motionFrames(w, h, 16, 16, 16, 16)
	if err := m.Update(prev, cur); err != nil {
		t.Fatal(err)
	}
	p.Observe(Feedback{Motion: m})
	ls := p.Labels(1) // frame 1: intermediate (cl > 1)
	if err := ls.Validate(w, h); err != nil {
		t.Fatalf("%s emitted invalid labels: %v", name, err)
	}
	// Full captures still happen on the cycle boundary.
	if full := p.Labels(0); len(full) != 1 || full[0].W != w {
		t.Fatalf("%s frame 0 = %v, want full capture", name, full)
	}
	return ls
}

func TestMotionSkipPolicy(t *testing.T) {
	const w, h = 64, 48
	ls := scenarioLabels(t, "motion-skip", w, h, 8)
	// Full spatial coverage: every pixel is inside some label.
	area := 0
	hotCovered := false
	for _, l := range ls {
		area += l.W * l.H
		if l.X <= 16 && 16 < l.X+l.W && l.Y <= 16 && 16 < l.Y+l.H {
			if l.Skip != 1 {
				t.Fatalf("hot tile landed in label %+v, want skip 1", l)
			}
			hotCovered = true
		}
	}
	if area != w*h {
		t.Fatalf("labels cover %d px, want full coverage %d", area, w*h)
	}
	if !hotCovered {
		t.Fatal("no label covers the moving box")
	}
	// Cold tiles coast at MaxSkip.
	sawCold := false
	for _, l := range ls {
		if l.Skip == DefaultFeatureParams().MaxSkip {
			sawCold = true
		}
	}
	if !sawCold {
		t.Fatalf("no cold-tile label with skip %d in %v", DefaultFeatureParams().MaxSkip, ls)
	}
}

func TestSaliencyStridePolicy(t *testing.T) {
	const w, h = 64, 48
	ls := scenarioLabels(t, "saliency-stride", w, h, 8)
	strides := map[int]bool{}
	for _, l := range ls {
		if l.Skip != 1 {
			t.Fatalf("saliency-stride emitted skip %d, want pure spatial decimation", l.Skip)
		}
		strides[l.Stride] = true
	}
	if !strides[1] || !strides[4] {
		t.Fatalf("want stride-1 (salient) and stride-4 (boring) labels, got strides %v", strides)
	}

	// A keypoint pins its tile to stride 1 even with zero change energy,
	// and fast global motion caps the coarsest stride at 2.
	p, _ := Build("saliency-stride", w, h, 8)
	m := NewMotionMap(w, h, 16)
	m.Update(frame.New(w, h, frame.Gray8), frame.New(w, h, frame.Gray8))
	p.Observe(Feedback{Motion: m, KeyPoints: []features.KeyPoint{{X: 40, Y: 40}}, MeanDisplacement: 10})
	for _, l := range p.Labels(1) {
		if l.X <= 40 && 40 < l.X+l.W && l.Y <= 40 && 40 < l.Y+l.H {
			if l.Stride != 1 {
				t.Fatalf("keypoint tile has stride %d, want 1", l.Stride)
			}
		} else if l.Stride > 2 {
			t.Fatalf("stride %d under fast motion, want capped at 2", l.Stride)
		}
	}
}

func TestEventChangePolicy(t *testing.T) {
	const w, h = 64, 48
	ls := scenarioLabels(t, "event-change", w, h, 8)
	// Only the changed tile is captured; everything else does not exist.
	if len(ls) != 1 {
		t.Fatalf("event-change emitted %d labels for one changed tile: %v", len(ls), ls)
	}
	if l := ls[0]; l.X != 16 || l.Y != 16 || l.Stride != 1 || l.Skip != 1 {
		t.Fatalf("changed-tile label = %+v", l)
	}

	// A static scene captures nothing at all between full frames.
	p, _ := Build("event-change", w, h, 8)
	m := NewMotionMap(w, h, 16)
	m.Update(frame.New(w, h, frame.Gray8), frame.New(w, h, frame.Gray8))
	p.Observe(Feedback{Motion: m})
	if ls := p.Labels(1); len(ls) != 0 {
		t.Fatalf("static scene emitted %v, want no labels", ls)
	}
	// But the cycle's full capture still renews coverage.
	if full := p.Labels(8); len(full) != 1 || full[0].W != w {
		t.Fatalf("frame 8 = %v, want full capture", full)
	}
}

func TestMergeTileRunsMergesUniformRows(t *testing.T) {
	m := NewMotionMap(64, 48, 16) // 4x3 grid, all energy zero
	ls := mergeTileRuns(m, func(c, r int) (int, int, bool) { return 1, 1, true })
	// One label per row, not one per tile.
	if len(ls) != m.Rows {
		t.Fatalf("uniform grid produced %d labels, want %d merged rows", len(ls), m.Rows)
	}
	for _, l := range ls {
		if l.W != 64 {
			t.Fatalf("merged row label %+v does not span the frame", l)
		}
	}
}

// TestBuildUnknownListsRegistered: the unknown-policy error names every
// registered policy so -policy typos are self-diagnosing (regression: the
// old message printed an opaque %v slice).
func TestBuildUnknownListsRegistered(t *testing.T) {
	_, err := Build("no-such-policy", 64, 48, 4)
	if err == nil {
		t.Fatal("unknown policy built")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered policy %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), "no-such-policy") {
		t.Errorf("error %q does not echo the requested name", err)
	}
}
