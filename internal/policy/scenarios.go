package policy

import "repro/internal/region"

// Scenario policies beyond the paper's feature/box families, registered in
// init below. All three consume the Feedback.Motion change-energy grid and
// stress different axes of the rhythmic-pixel design:
//
//   - motion-skip: full spatial coverage, temporal gating per tile — the
//     intelligent-skipping CMOS model (arXiv:2409.17341). Hot tiles sample
//     every frame, cold tiles coast on their skip rhythm.
//   - saliency-stride: full temporal coverage, spatial subsampling per tile
//     — salient tiles (keypoints or high change energy) keep stride 1,
//     boring ones decimate; fast global motion caps the coarseness.
//   - event-change: only changed tiles are captured at all between full
//     frames — the event-camera regime (arXiv:2206.04341). A static scene
//     costs near zero traffic.
//
// Each falls back to full-frame capture until its first motion observation,
// and renews scene coverage with a full capture every CL frames (Cycle).

// MotionThresholds gates the scenario policies' tile classification, in
// mean-absolute-byte-delta units (the MotionMap scale, [0, 255]).
type MotionThresholds struct {
	// Hot marks a tile as actively changing (sampled every frame).
	Hot float64
	// Warm marks a tile as drifting (sampled at an intermediate rhythm).
	Warm float64
}

// DefaultMotionThresholds suits 8-bit content with sensor-noise-free synth
// scenes; real captures would sit Warm above the noise floor.
func DefaultMotionThresholds() MotionThresholds {
	return MotionThresholds{Hot: 6, Warm: 1.5}
}

func init() {
	Register(Maker{
		Name:        "motion-skip",
		Description: "full frame every CL frames; between, every tile is captured but its skip rhythm follows tile change energy (hot: every frame, cold: MaxSkip)",
		New: func(w, h, cl int) Policy {
			p := &motionSkipPolicy{
				thresh:  DefaultMotionThresholds(),
				maxSkip: DefaultFeatureParams().MaxSkip,
			}
			p.cycle = NewCycle(cl, w, h, SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
	Register(Maker{
		Name:        "saliency-stride",
		Description: "full frame every CL frames; between, tile stride follows saliency (keypoints + change energy), fast global motion caps the coarseness",
		New: func(w, h, cl int) Policy {
			p := &saliencyStridePolicy{
				thresh:    DefaultMotionThresholds(),
				maxStride: 4,
				fastDisp:  DefaultFeatureParams().FastDisplacement,
			}
			p.cycle = NewCycle(cl, w, h, SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
	Register(Maker{
		Name:        "event-change",
		Description: "full frame every CL frames; between, only tiles whose change energy clears the threshold are captured at all (event-camera regime)",
		New: func(w, h, cl int) Policy {
			p := &eventChangePolicy{thresh: DefaultMotionThresholds()}
			p.cycle = NewCycle(cl, w, h, SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
}

// mergeTileRuns walks the motion grid and emits one label per horizontal
// run of tiles that classify identically, keeping the label count far
// below the per-tile worst case. classify returns (stride, skip, capture);
// capture=false omits the run entirely (the decoder replays history there).
func mergeTileRuns(m *MotionMap, classify func(col, row int) (stride, skip int, capture bool)) region.List {
	var out region.List
	for r := 0; r < m.Rows; r++ {
		c := 0
		for c < m.Cols {
			stride, skip, capture := classify(c, r)
			run := c
			for run+1 < m.Cols {
				s2, k2, cap2 := classify(run+1, r)
				if s2 != stride || k2 != skip || cap2 != capture {
					break
				}
				run++
			}
			if capture {
				if l, ok := m.tileLabel(c, run, r, stride, skip); ok {
					out = append(out, l)
				}
			}
			c = run + 1
		}
	}
	return out.SortByY()
}

// motionSkipPolicy: temporal gating per tile, full spatial coverage.
type motionSkipPolicy struct {
	thresh  MotionThresholds
	maxSkip int
	cycle   *Cycle
	last    region.List
}

func (p *motionSkipPolicy) Observe(fb Feedback) {
	if fb.Motion == nil {
		return
	}
	p.last = mergeTileRuns(fb.Motion, func(c, r int) (int, int, bool) {
		switch e := fb.Motion.At(c, r); {
		case e >= p.thresh.Hot:
			return 1, 1, true
		case e >= p.thresh.Warm:
			return 1, 2, true
		default:
			return 1, p.maxSkip, true
		}
	})
}

func (p *motionSkipPolicy) Labels(frameIndex int) region.List {
	if p.last == nil {
		return region.List{region.FullFrame(p.cycle.W, p.cycle.H)}
	}
	return p.cycle.Labels(frameIndex)
}

// saliencyStridePolicy: spatial decimation per tile, full temporal coverage.
type saliencyStridePolicy struct {
	thresh    MotionThresholds
	maxStride int
	fastDisp  float64
	cycle     *Cycle
	last      region.List
}

func (p *saliencyStridePolicy) Observe(fb Feedback) {
	if fb.Motion == nil {
		return
	}
	m := fb.Motion
	// Tiles holding keypoints are salient regardless of change energy: the
	// task is anchored there and decimation would cost it accuracy.
	kpTiles := make([]bool, len(m.Energy))
	for _, kp := range fb.KeyPoints {
		c, r := int(kp.X)/m.Tile, int(kp.Y)/m.Tile
		if c >= 0 && c < m.Cols && r >= 0 && r < m.Rows {
			kpTiles[r*m.Cols+c] = true
		}
	}
	// Fast global motion needs finer spatial sampling everywhere to keep
	// the task trackable — halve the allowed coarseness.
	coarse := p.maxStride
	if fb.MeanDisplacement >= p.fastDisp && coarse > 2 {
		coarse = 2
	}
	p.last = mergeTileRuns(m, func(c, r int) (int, int, bool) {
		switch e := m.At(c, r); {
		case kpTiles[r*m.Cols+c] || e >= p.thresh.Hot:
			return 1, 1, true
		case e >= p.thresh.Warm:
			return min(2, coarse), 1, true
		default:
			return coarse, 1, true
		}
	})
}

func (p *saliencyStridePolicy) Labels(frameIndex int) region.List {
	if p.last == nil {
		return region.List{region.FullFrame(p.cycle.W, p.cycle.H)}
	}
	return p.cycle.Labels(frameIndex)
}

// eventChangePolicy: only changed tiles exist between full captures.
type eventChangePolicy struct {
	thresh MotionThresholds
	cycle  *Cycle
	seen   bool
	last   region.List
}

func (p *eventChangePolicy) Observe(fb Feedback) {
	if fb.Motion == nil {
		return
	}
	p.seen = true
	p.last = mergeTileRuns(fb.Motion, func(c, r int) (int, int, bool) {
		// Warm, not Hot: an event sensor fires on any detectable change.
		return 1, 1, fb.Motion.At(c, r) >= p.thresh.Warm
	})
}

func (p *eventChangePolicy) Labels(frameIndex int) region.List {
	if !p.seen {
		return region.List{region.FullFrame(p.cycle.W, p.cycle.H)}
	}
	// p.last may legitimately be empty (static scene): capture nothing and
	// let the decoder replay history until the next full frame.
	return p.cycle.Labels(frameIndex)
}
