package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/features"
	"repro/internal/region"
	"repro/internal/synth"
)

// The paper's two-tier developer model (§4.3.1): "Policy Makers" write
// policies; "Policy Users" select one from a pool by name, the way app
// developers pick a cuDNN kernel rather than writing CUDA. The registry is
// that pool.

// Feedback carries the vision task's per-frame results into a policy.
// Policies consume the fields relevant to them and ignore the rest.
type Feedback struct {
	// KeyPoints and their per-feature Displacements (aligned; negative =
	// unknown) from a feature-based frontend.
	KeyPoints     []features.KeyPoint
	Displacements []float64
	// MeanDisplacement is the global motion estimate in px/frame.
	MeanDisplacement float64
	// Boxes and BoxVelocities from a tracker-based frontend.
	Boxes         []synth.Box
	BoxVelocities []float64
	// Motion, when non-nil, is the per-tile change-energy grid between the
	// two most recent decoded frames — what the scenario policies
	// (motion-skip, saliency-stride, event-change) gate on.
	Motion *MotionMap
}

// Policy is the full region-selection loop: observe task results, emit the
// next frame's capture workload.
type Policy interface {
	// Observe feeds the current frame's task results.
	Observe(fb Feedback)
	// Labels returns the region labels for the given frame index.
	Labels(frameIndex int) region.List
}

// Maker constructs a policy for a frame geometry and cycle length — the
// policy-maker half of the paper's dichotomy.
type Maker struct {
	// Name selects the policy ("feature-cycle", ...).
	Name string
	// Description explains the policy to policy users.
	Description string
	// New builds an instance.
	New func(w, h, cycleLength int) Policy
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Maker{}
)

// Register adds a policy maker to the pool. Registering a duplicate name
// panics: policy names are an API surface.
func Register(m Maker) {
	if m.Name == "" || m.New == nil {
		panic("policy: maker needs a name and constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", m.Name))
	}
	registry[m.Name] = m
}

// Build instantiates a registered policy by name — the policy-user half.
func Build(name string, w, h, cycleLength int) (Policy, error) {
	registryMu.RLock()
	m, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q; registered policies: %s",
			name, strings.Join(Names(), ", "))
	}
	return m.New(w, h, cycleLength), nil
}

// Names lists the registered policies, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns a maker's description.
func Describe(name string) (string, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	return m.Description, ok
}

// --- Built-in policies ---

func init() {
	Register(Maker{
		Name:        "feature-cycle",
		Description: "full frame every CL frames; feature-derived regions between (size→extent, octave→stride, velocity→skip)",
		New: func(w, h, cl int) Policy {
			p := &featureCyclePolicy{params: DefaultFeatureParams(), w: w, h: h}
			p.cycle = NewCycle(cl, w, h, SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
	Register(Maker{
		Name:        "box-cycle",
		Description: "full frame every CL frames; tracked-box regions with margins between",
		New: func(w, h, cl int) Policy {
			p := &boxCyclePolicy{params: DefaultBoxParams(), w: w, h: h}
			p.cycle = NewCycle(cl, w, h, SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
	Register(Maker{
		Name:        "predictive",
		Description: "full frame every CL frames; Kalman-predicted box regions with uncertainty margins between",
		New: func(w, h, cl int) Policy {
			pred := NewPredictive(w, h, DefaultBoxParams())
			return &predictiveCyclePolicy{
				pred:  pred,
				cycle: NewCycle(cl, w, h, pred),
			}
		},
	})
	Register(Maker{
		Name:        "adaptive-cycle",
		Description: "feature regions with a motion-adaptive cycle length (CL/2 .. 2*CL)",
		New: func(w, h, cl int) Policy {
			minCL := cl / 2
			if minCL < 1 {
				minCL = 1
			}
			p := &adaptiveFeaturePolicy{params: DefaultFeatureParams(), w: w, h: h}
			p.ada = NewAdaptiveCycle(minCL, cl*2, w, h, DefaultFeatureParams().FastDisplacement,
				SourceFunc(func(int) region.List { return p.last }))
			return p
		},
	})
}

// featureCyclePolicy is the paper's §3.4 case-study policy.
type featureCyclePolicy struct {
	params FeatureParams
	w, h   int
	cycle  *Cycle
	last   region.List
}

func (p *featureCyclePolicy) Observe(fb Feedback) {
	p.last = FromKeypointsVel(fb.KeyPoints, fb.Displacements, fb.MeanDisplacement, p.w, p.h, p.params)
}

func (p *featureCyclePolicy) Labels(frameIndex int) region.List {
	return p.cycle.Labels(frameIndex)
}

// boxCyclePolicy drives regions from tracked boxes (face/pose tasks).
type boxCyclePolicy struct {
	params BoxParams
	w, h   int
	cycle  *Cycle
	last   region.List
}

func (p *boxCyclePolicy) Observe(fb Feedback) {
	p.last = FromBoxes(fb.Boxes, fb.BoxVelocities, p.w, p.h, p.params)
}

func (p *boxCyclePolicy) Labels(frameIndex int) region.List {
	return p.cycle.Labels(frameIndex)
}

// predictiveCyclePolicy wraps the Kalman-predictive source in a cycle.
type predictiveCyclePolicy struct {
	pred  *Predictive
	cycle *Cycle
}

func (p *predictiveCyclePolicy) Observe(fb Feedback) { p.pred.Observe(fb.Boxes) }

func (p *predictiveCyclePolicy) Labels(frameIndex int) region.List {
	return p.cycle.Labels(frameIndex)
}

// adaptiveFeaturePolicy pairs feature regions with the adaptive cycle.
type adaptiveFeaturePolicy struct {
	params FeatureParams
	w, h   int
	ada    *AdaptiveCycle
	last   region.List
}

func (p *adaptiveFeaturePolicy) Observe(fb Feedback) {
	p.ada.ObserveMotion(fb.MeanDisplacement)
	p.last = FromKeypointsVel(fb.KeyPoints, fb.Displacements, fb.MeanDisplacement, p.w, p.h, p.params)
}

func (p *adaptiveFeaturePolicy) Labels(frameIndex int) region.List {
	return p.ada.Labels(frameIndex)
}
