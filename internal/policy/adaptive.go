package policy

import "repro/internal/region"

// AdaptiveCycle implements the cycle-length refinement the paper sketches
// in §4.3.1/§7: "The cycle length could also be adaptive, for example, by
// using the motion in the frame or other semantics to guide the need for
// more frequent or less frequent full captures." The policy shortens the
// cycle under high scene motion (tracking error accumulates quickly, so
// full captures must come sooner) and stretches it in static scenes.
type AdaptiveCycle struct {
	// MinCycle and MaxCycle bound the adaptation.
	MinCycle, MaxCycle int
	// FastMotion is the per-frame displacement (px) at which the cycle
	// clamps to MinCycle; zero motion maps to MaxCycle.
	FastMotion float64
	// Source provides intermediate-frame labels.
	Source Source
	// W, H are the frame dimensions.
	W, H int

	cycle        int
	lastFull     int
	observedDisp float64
	started      bool
}

// NewAdaptiveCycle returns an adaptive policy starting at MaxCycle.
func NewAdaptiveCycle(minCycle, maxCycle, w, h int, fastMotion float64, src Source) *AdaptiveCycle {
	if minCycle < 1 || maxCycle < minCycle {
		panic("policy: need 1 <= minCycle <= maxCycle")
	}
	if fastMotion <= 0 {
		panic("policy: fastMotion must be positive")
	}
	return &AdaptiveCycle{
		MinCycle: minCycle, MaxCycle: maxCycle,
		FastMotion: fastMotion,
		Source:     src,
		W:          w, H: h,
		cycle: maxCycle,
	}
}

// ObserveMotion feeds the policy the scene motion estimate for the current
// frame (e.g. mean matched-feature displacement). Call once per frame.
func (a *AdaptiveCycle) ObserveMotion(dispPxPerFrame float64) {
	if dispPxPerFrame < 0 {
		dispPxPerFrame = 0
	}
	// Exponential smoothing keeps the cycle from thrashing.
	const alpha = 0.3
	a.observedDisp = (1-alpha)*a.observedDisp + alpha*dispPxPerFrame
	frac := a.observedDisp / a.FastMotion
	if frac > 1 {
		frac = 1
	}
	a.cycle = a.MaxCycle - int(float64(a.MaxCycle-a.MinCycle)*frac+0.5)
}

// CurrentCycle returns the adapted cycle length.
func (a *AdaptiveCycle) CurrentCycle() int { return a.cycle }

// IsFullCapture reports whether frameIndex triggers a full capture under
// the current cycle.
func (a *AdaptiveCycle) IsFullCapture(frameIndex int) bool {
	if !a.started {
		return true
	}
	return frameIndex-a.lastFull >= a.cycle
}

// Labels returns the capture workload for the frame.
func (a *AdaptiveCycle) Labels(frameIndex int) region.List {
	if a.IsFullCapture(frameIndex) {
		a.lastFull = frameIndex
		a.started = true
		return region.List{region.FullFrame(a.W, a.H)}
	}
	if a.Source == nil {
		return nil
	}
	return a.Source.Labels(frameIndex)
}
