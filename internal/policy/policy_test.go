package policy

import (
	"testing"

	"repro/internal/features"
	"repro/internal/region"
	"repro/internal/synth"
)

func TestFromKeypointsMapping(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{
		{X: 100, Y: 100, Octave: 0, Size: 31}, // fine octave → stride 1
		{X: 300, Y: 200, Octave: 4, Size: 80}, // coarse octave → stride 4
	}
	ls := FromKeypoints(kps, 10 /* fast */, 640, 480, p)
	if len(ls) != 2 {
		t.Fatalf("got %d labels", len(ls))
	}
	if err := ls.Validate(640, 480); err != nil {
		t.Fatal(err)
	}
	// Fast motion → skip 1 everywhere.
	for _, l := range ls {
		if l.Skip != 1 {
			t.Errorf("fast motion skip = %d, want 1", l.Skip)
		}
	}
	var fine, coarse int
	for _, l := range ls {
		if l.W < 100 {
			fine = l.Stride
		} else {
			coarse = l.Stride
		}
	}
	if fine != 1 || coarse != 4 {
		t.Errorf("strides fine=%d coarse=%d, want 1/4", fine, coarse)
	}
}

func TestFromKeypointsSlowMotionSkips(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{{X: 100, Y: 100, Size: 31}}
	ls := FromKeypoints(kps, 0 /* static */, 640, 480, p)
	if ls[0].Skip != p.MaxSkip {
		t.Errorf("static skip = %d, want %d", ls[0].Skip, p.MaxSkip)
	}
	mid := FromKeypoints(kps, p.FastDisplacement/2, 640, 480, p)
	if mid[0].Skip <= 1 || mid[0].Skip > p.MaxSkip {
		t.Errorf("mid-speed skip = %d, want in (1, %d]", mid[0].Skip, p.MaxSkip)
	}
}

func TestFromKeypointsSizeClamps(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{
		{X: 320, Y: 240, Size: 2},   // tiny → MinSide
		{X: 320, Y: 240, Size: 500}, // huge → MaxSide
	}
	ls := FromKeypoints(kps, 5, 640, 480, p)
	if ls[0].W != p.MaxSide && ls[1].W != p.MaxSide {
		t.Errorf("no label clamped to MaxSide: %v", ls)
	}
	foundMin := false
	for _, l := range ls {
		if l.W == p.MinSide || l.H == p.MinSide {
			foundMin = true
		}
	}
	if !foundMin {
		t.Errorf("no label clamped to MinSide: %v", ls)
	}
}

func TestFromKeypointsCapsRegions(t *testing.T) {
	p := DefaultFeatureParams()
	p.MaxRegions = 5
	var kps []features.KeyPoint
	for i := 0; i < 50; i++ {
		kps = append(kps, features.KeyPoint{X: float64(10 + i*10), Y: 100, Size: 31})
	}
	ls := FromKeypoints(kps, 5, 640, 480, p)
	if len(ls) != 5 {
		t.Errorf("got %d labels, want cap 5", len(ls))
	}
}

func TestFromKeypointsClipsAtBorders(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{{X: 2, Y: 2, Size: 31}} // near corner
	ls := FromKeypoints(kps, 5, 640, 480, p)
	if len(ls) != 1 {
		t.Fatalf("border keypoint produced %d labels", len(ls))
	}
	if err := ls.Validate(640, 480); err != nil {
		t.Fatal(err)
	}
}

func TestFromBoxes(t *testing.T) {
	p := DefaultBoxParams()
	boxes := []synth.Box{
		{X: 100, Y: 100, W: 60, H: 75},
		{X: 300, Y: 200, W: 200, H: 150}, // large → stride 2
	}
	ls := FromBoxes(boxes, []float64{5, 0.5}, 640, 480, p)
	if len(ls) != 2 {
		t.Fatalf("got %d labels", len(ls))
	}
	if err := ls.Validate(640, 480); err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if l.W <= 60 && l.H <= 75 {
			t.Errorf("margin not applied: %v", l)
		}
	}
	var small, large *int
	for i := range ls {
		if ls[i].W < 200 {
			small = &ls[i].Stride
		} else {
			large = &ls[i].Stride
		}
	}
	if small == nil || large == nil || *small != 1 || *large != 2 {
		t.Errorf("stride mapping wrong: %v", ls)
	}
	// Fast box skips less than slow box.
	fast, slow := 0, 0
	for _, l := range ls {
		if l.W < 200 {
			fast = l.Skip
		} else {
			slow = l.Skip
		}
	}
	if fast != 1 || slow <= fast {
		t.Errorf("skip mapping: fast=%d slow=%d", fast, slow)
	}
}

func TestFromBoxesNilVelocities(t *testing.T) {
	ls := FromBoxes([]synth.Box{{X: 10, Y: 10, W: 20, H: 20}}, nil, 100, 100, DefaultBoxParams())
	if len(ls) != 1 || ls[0].Skip != 1 {
		t.Errorf("nil velocities: %v", ls)
	}
}

func TestCycle(t *testing.T) {
	calls := 0
	src := SourceFunc(func(frameIndex int) region.List {
		calls++
		return region.List{{X: 10, Y: 10, W: 20, H: 20, Stride: 1, Skip: 1}}
	})
	c := NewCycle(5, 320, 240, src)
	for f := 0; f < 12; f++ {
		ls := c.Labels(f)
		if c.IsFullCapture(f) != (f%5 == 0) {
			t.Errorf("IsFullCapture(%d) wrong", f)
		}
		if f%5 == 0 {
			if len(ls) != 1 || ls[0].W != 320 || ls[0].H != 240 {
				t.Errorf("frame %d: full capture labels = %v", f, ls)
			}
		} else if len(ls) != 1 || ls[0].W != 20 {
			t.Errorf("frame %d: intermediate labels = %v", f, ls)
		}
	}
	if calls != 12-3 { // frames 0, 5, 10 are full captures
		t.Errorf("source consulted %d times, want 9", calls)
	}
	defer func() {
		if recover() == nil {
			t.Error("cycle length 0 did not panic")
		}
	}()
	NewCycle(0, 1, 1, nil)
}

func TestCycleNilSource(t *testing.T) {
	c := NewCycle(3, 100, 100, nil)
	if got := c.Labels(1); got != nil {
		t.Errorf("nil source intermediate labels = %v", got)
	}
}

func TestPredictivePolicy(t *testing.T) {
	p := NewPredictive(640, 480, DefaultBoxParams())
	if got := p.Labels(0); len(got) != 0 {
		t.Errorf("labels before any observation: %v", got)
	}
	// Object moving right at 4 px/frame.
	for i := 0; i < 20; i++ {
		p.Observe([]synth.Box{{X: 100 + 4*i, Y: 200, W: 40, H: 40}})
	}
	ls := p.Labels(20)
	if len(ls) != 1 {
		t.Fatalf("got %d labels", len(ls))
	}
	l := ls[0]
	if err := l.Validate(640, 480); err != nil {
		t.Fatal(err)
	}
	// Prediction should lead the last observation (x=176 center=196):
	// region center should be >= ~198.
	cx := l.X + l.W/2
	if cx < 197 {
		t.Errorf("predicted region center x = %d, want ahead of 196", cx)
	}
	// Margin inflation: region wider than the box.
	if l.W <= 40 {
		t.Errorf("region width %d not inflated", l.W)
	}
	// Fast object → skip 1.
	if l.Skip != 1 {
		t.Errorf("fast object skip = %d", l.Skip)
	}
}

func TestPredictiveShrinksFilterSet(t *testing.T) {
	p := NewPredictive(640, 480, DefaultBoxParams())
	p.Observe([]synth.Box{{X: 10, Y: 10, W: 20, H: 20}, {X: 200, Y: 200, W: 20, H: 20}})
	p.Observe([]synth.Box{{X: 12, Y: 10, W: 20, H: 20}})
	if got := len(p.Labels(0)); got != 1 {
		t.Errorf("labels after shrink = %d, want 1", got)
	}
}

func TestFromKeypointsVelPerFeatureSkip(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{
		{X: 100, Y: 100, Size: 31}, // fast feature
		{X: 300, Y: 200, Size: 31}, // static feature
		{X: 500, Y: 300, Size: 31}, // unknown → fallback
	}
	disps := []float64{10, 0, -1}
	ls := FromKeypointsVel(kps, disps, 10 /* fallback fast */, 640, 480, p)
	if len(ls) != 3 {
		t.Fatalf("got %d labels", len(ls))
	}
	skipAt := func(x int) int {
		for _, l := range ls {
			if l.Contains(x, l.Y+1) || (x >= l.X && x < l.X+l.W) {
				return l.Skip
			}
		}
		t.Fatalf("no label near x=%d", x)
		return 0
	}
	if got := skipAt(100); got != 1 {
		t.Errorf("fast feature skip = %d, want 1", got)
	}
	if got := skipAt(300); got != p.MaxSkip {
		t.Errorf("static feature skip = %d, want %d", got, p.MaxSkip)
	}
	if got := skipAt(500); got != 1 {
		t.Errorf("fallback feature skip = %d, want 1 (fast fallback)", got)
	}
}

func TestFromKeypointsDelegatesToVel(t *testing.T) {
	p := DefaultFeatureParams()
	kps := []features.KeyPoint{{X: 100, Y: 100, Size: 31, Octave: 2}}
	a := FromKeypoints(kps, 2, 640, 480, p)
	b := FromKeypointsVel(kps, nil, 2, 640, 480, p)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("FromKeypoints %v != FromKeypointsVel %v", a, b)
	}
}
