// Package policy implements region label selection policies (§4.3.1): the
// logic that converts what the vision task knows — feature positions and
// attributes, tracked boxes, motion — into the rhythmic pixel region labels
// for the next frame.
//
// Policies follow the paper's example: feature "size" guides region width
// and height (with margin for frame-to-frame displacement), the "octave"
// attribute guides stride, and feature velocity guides the temporal skip
// rate; a cycle-length parameter inserts periodic full-frame captures so
// objects entering the scene are discovered.
package policy

import (
	"math"

	"repro/internal/features"
	"repro/internal/kalman"
	"repro/internal/region"
	"repro/internal/synth"
)

// FeatureParams maps keypoint attributes to region parameters.
type FeatureParams struct {
	// SizeMargin scales the keypoint size into the region side length,
	// leaving slack for frame-to-frame displacement.
	SizeMargin float64
	// MinSide and MaxSide clamp region dimensions (Table 4 observes
	// 70x70 to 230x230 for V-SLAM at 4K).
	MinSide, MaxSide int
	// OctaveStride[i] is the stride for octave i (clamped to the last
	// entry); coarser octaves tolerate coarser sampling.
	OctaveStride []int
	// MaxSkip caps the temporal skip of slow regions.
	MaxSkip int
	// FastDisplacement is the per-frame motion (px) at or above which a
	// region is sampled every frame.
	FastDisplacement float64
	// MaxRegions caps the emitted label count (encoder register capacity);
	// 0 means unlimited.
	MaxRegions int
}

// DefaultFeatureParams matches the evaluation configuration.
func DefaultFeatureParams() FeatureParams {
	return FeatureParams{
		SizeMargin:       1.8,
		MinSide:          20,
		MaxSide:          230,
		OctaveStride:     []int{1, 2, 2, 4, 4, 4},
		MaxSkip:          3,
		FastDisplacement: 4,
		MaxRegions:       1600,
	}
}

// FromKeypoints builds region labels around detected features. meanDisp is
// the matched-feature displacement estimate for the frame (px/frame), used
// for the temporal rate of every region; frameW/frameH clip the labels.
// For per-feature temporal rates, use FromKeypointsVel.
func FromKeypoints(kps []features.KeyPoint, meanDisp float64, frameW, frameH int, p FeatureParams) region.List {
	return FromKeypointsVel(kps, nil, meanDisp, frameW, frameH, p)
}

// phaseFor staggers a region's rhythm within its skip interval by a stable
// spatial hash, so different slow regions sample on different frames — the
// "rhythmic" staircase of Fig. 1c. Without staggering, a scene whose
// regions all share one skip value would store zero pixels on off-phase
// frames and a burst on others.
func phaseFor(x, y, skip int) int {
	if skip <= 1 {
		return 0
	}
	h := (x >> 4) + (y>>4)*31
	return ((h % skip) + skip) % skip
}

// FromKeypointsVel builds region labels around detected features using
// per-feature velocities: disps is aligned with kps (negative entries mean
// "unknown", falling back to fallbackDisp). This is the paper's full
// per-region temporal mapping — each feature's own frame-to-frame movement
// sets its region's skip rate.
func FromKeypointsVel(kps []features.KeyPoint, disps []float64, fallbackDisp float64, frameW, frameH int, p FeatureParams) region.List {
	var out region.List
	for i, kp := range kps {
		disp := fallbackDisp
		if disps != nil && i < len(disps) && disps[i] >= 0 {
			disp = disps[i]
		}
		skip := skipForDisplacement(disp, p)
		side := int(kp.Size * p.SizeMargin)
		if side < p.MinSide {
			side = p.MinSide
		}
		if p.MaxSide > 0 && side > p.MaxSide {
			side = p.MaxSide
		}
		stride := 1
		if len(p.OctaveStride) > 0 {
			idx := kp.Octave
			if idx >= len(p.OctaveStride) {
				idx = len(p.OctaveStride) - 1
			}
			if idx < 0 {
				idx = 0
			}
			stride = p.OctaveStride[idx]
		}
		x0, y0 := int(kp.X)-side/2, int(kp.Y)-side/2
		l, ok := region.Clip(region.Label{
			X:      x0,
			Y:      y0,
			W:      side,
			H:      side,
			Stride: stride,
			Skip:   skip,
			Phase:  phaseFor(x0, y0, skip),
		}, frameW, frameH)
		if ok {
			out = append(out, l)
		}
		if p.MaxRegions > 0 && len(out) >= p.MaxRegions {
			break
		}
	}
	return out.SortByY()
}

// skipForDisplacement maps per-frame motion to a temporal skip: fast
// regions are sampled every frame; slow ones skip up to MaxSkip.
func skipForDisplacement(disp float64, p FeatureParams) int {
	if p.MaxSkip <= 1 || p.FastDisplacement <= 0 {
		return 1
	}
	if disp >= p.FastDisplacement {
		return 1
	}
	// Linear in slowness: disp 0 → MaxSkip, disp fast → 1.
	skip := 1 + int(float64(p.MaxSkip-1)*(1-disp/p.FastDisplacement)+0.5)
	if skip > p.MaxSkip {
		skip = p.MaxSkip
	}
	if skip < 1 {
		skip = 1
	}
	return skip
}

// BoxParams maps tracked boxes to region parameters (face and pose tasks).
type BoxParams struct {
	// Margin inflates the box on each side by this fraction of its size.
	Margin float64
	// StrideForSide returns the stride for a given box side length; the
	// default uses stride 1 under 128 px and 2 above (Table 4 face rows).
	StrideForSide func(side int) int
	// MaxSkip and FastDisplacement act as in FeatureParams.
	MaxSkip          int
	FastDisplacement float64
}

// DefaultBoxParams matches the evaluation configuration.
func DefaultBoxParams() BoxParams {
	return BoxParams{
		Margin:           0.35,
		MaxSkip:          2,
		FastDisplacement: 3,
	}
}

// FromBoxes builds region labels around tracked boxes. velocities[i] is the
// per-frame motion of box i in pixels (pass nil for unknown → skip 1).
func FromBoxes(boxes []synth.Box, velocities []float64, frameW, frameH int, p BoxParams) region.List {
	strideFor := p.StrideForSide
	if strideFor == nil {
		strideFor = func(side int) int {
			if side >= 96 {
				return 2
			}
			return 1
		}
	}
	var out region.List
	for i, b := range boxes {
		mx := int(float64(b.W) * p.Margin)
		my := int(float64(b.H) * p.Margin)
		skip := 1
		if velocities != nil && i < len(velocities) {
			skip = skipForDisplacement(velocities[i], FeatureParams{MaxSkip: p.MaxSkip, FastDisplacement: p.FastDisplacement})
		}
		side := b.W
		if b.H > side {
			side = b.H
		}
		l, ok := region.Clip(region.Label{
			X:      b.X - mx,
			Y:      b.Y - my,
			W:      b.W + 2*mx,
			H:      b.H + 2*my,
			Stride: strideFor(side),
			Skip:   skip,
			Phase:  phaseFor(b.X-mx, b.Y-my, skip),
		}, frameW, frameH)
		if ok {
			out = append(out, l)
		}
	}
	return out.SortByY()
}

// Source supplies region labels for intermediate (non-full-capture) frames,
// typically closing the loop from the vision task's previous-frame results.
type Source interface {
	// Labels returns the region labels for the given frame index.
	Labels(frameIndex int) region.List
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(frameIndex int) region.List

// Labels implements Source.
func (f SourceFunc) Labels(frameIndex int) region.List { return f(frameIndex) }

// Cycle is the paper's example policy (Fig. 7): a full-frame capture every
// CycleLength frames for scene coverage, with Source-provided regions on
// the intermediate frames.
type Cycle struct {
	// CycleLength is the number of frames between full captures (>= 1).
	CycleLength int
	// Source provides intermediate-frame labels.
	Source Source
	// W, H are the frame dimensions.
	W, H int
}

// NewCycle returns a cycle policy.
func NewCycle(cycleLength, w, h int, src Source) *Cycle {
	if cycleLength < 1 {
		panic("policy: cycle length must be >= 1")
	}
	return &Cycle{CycleLength: cycleLength, Source: src, W: w, H: h}
}

// IsFullCapture reports whether the frame is a full-frame capture.
func (c *Cycle) IsFullCapture(frameIndex int) bool {
	return frameIndex%c.CycleLength == 0
}

// Labels returns the frame's capture workload.
func (c *Cycle) Labels(frameIndex int) region.List {
	if c.IsFullCapture(frameIndex) {
		return region.List{region.FullFrame(c.W, c.H)}
	}
	if c.Source == nil {
		return nil
	}
	return c.Source.Labels(frameIndex)
}

// Predictive wraps tracked boxes in per-object Kalman filters and emits
// regions centered on the *predicted* next-frame positions, with margins
// inflated by filter uncertainty — the paper's suggested Kalman-based
// policy refinement.
type Predictive struct {
	W, H   int
	Params BoxParams
	// Q and R are the Kalman process/measurement noise parameters.
	Q, R float64

	filters []*kalman.Filter2D
	sizes   []synth.Box
}

// NewPredictive returns a predictive policy for the given frame size.
func NewPredictive(w, h int, p BoxParams) *Predictive {
	return &Predictive{W: w, H: h, Params: p, Q: 0.5, R: 2}
}

// Observe updates the filters with this frame's tracked boxes. Object
// identity is positional: filters are matched to boxes by index, and the
// filter set is resized to match.
func (p *Predictive) Observe(boxes []synth.Box) {
	for len(p.filters) < len(boxes) {
		p.filters = append(p.filters, kalman.New(p.Q, p.R))
	}
	p.filters = p.filters[:len(boxes)]
	p.sizes = append(p.sizes[:0], boxes...)
	for i, b := range boxes {
		cx, cy := b.Center()
		p.filters[i].Predict()
		p.filters[i].Update(cx, cy)
	}
}

// Labels implements Source: regions around predicted next positions.
func (p *Predictive) Labels(_ int) region.List {
	var out region.List
	for i, f := range p.filters {
		if !f.Initialized() {
			continue
		}
		x, y, vx, vy := f.State()
		px, py := x+vx, y+vy // one-frame-ahead prediction
		b := p.sizes[i]
		inflate := int(f.Uncertainty()*2) + int(float64(max(b.W, b.H))*p.Params.Margin)
		speed := math.Hypot(vx, vy)
		skip := skipForDisplacement(speed, FeatureParams{MaxSkip: p.Params.MaxSkip, FastDisplacement: p.Params.FastDisplacement})
		x0 := int(px) - b.W/2 - inflate
		y0 := int(py) - b.H/2 - inflate
		l, ok := region.Clip(region.Label{
			X:      x0,
			Y:      y0,
			W:      b.W + 2*inflate,
			H:      b.H + 2*inflate,
			Stride: 1,
			Skip:   skip,
			Phase:  phaseFor(x0, y0, skip),
		}, p.W, p.H)
		if ok {
			out = append(out, l)
		}
	}
	return out.SortByY()
}
