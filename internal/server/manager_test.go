package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/region"
	"repro/rpx"
)

func testFrame(w, h int, f frame.Format, seed int) *frame.Frame {
	fr := frame.New(w, h, f)
	for i := range fr.Pix {
		fr.Pix[i] = byte(seed + i*3)
	}
	return fr
}

func TestSessionMatchesInProcessSystem(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	sess, err := m.Open(SessionConfig{W: 80, H: 60, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rpx.NewSystem(80, 60, rpx.Gray8)
	if err != nil {
		t.Fatal(err)
	}

	labels := region.List{{X: 8, Y: 8, W: 40, H: 30, Stride: 2, Skip: 2}}
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fr := testFrame(80, 60, frame.Gray8, i)
		got, err := sess.Capture(fr)
		if err != nil {
			t.Fatalf("session capture %d: %v", i, err)
		}
		want, err := ref.Capture(fr)
		if err != nil {
			t.Fatalf("ref capture %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("capture stats %d = %+v, want %+v", i, got, want)
		}
		dGot, err := sess.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		dWant, err := ref.Decoded()
		if err != nil {
			t.Fatal(err)
		}
		if !dGot.Equal(dWant) {
			t.Fatalf("decoded frame %d differs from in-process system", i)
		}
	}
	wGot, err := sess.DecodeWindow(8, 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	wWant, err := ref.DecodeWindow(8, 8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !wGot.Equal(wWant) {
		t.Fatal("decode window differs from in-process system")
	}
	ef, err := sess.LastEncoded()
	if err != nil {
		t.Fatal(err)
	}
	if ef.FrameIndex != ref.LastEncoded().FrameIndex {
		t.Fatalf("LastEncoded index = %d, want %d", ef.FrameIndex, ref.LastEncoded().FrameIndex)
	}
}

func TestBacklogFailFast(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	m.testOpGate = func(Op) { gateOnce.Do(func() { close(entered); <-release }) }

	sess, err := m.Open(SessionConfig{W: 16, H: 16, Format: frame.Gray8, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	fr := testFrame(16, 16, frame.Gray8, 0)

	// First capture occupies the worker (held at the gate); second fills
	// the 1-deep queue; third must fail fast with ErrBacklog.
	errs := make(chan error, 2)
	go func() {
		_, err := sess.Capture(fr)
		errs <- err
	}()
	<-entered // the worker now holds request 1, the queue is empty
	go func() {
		_, err := sess.Capture(fr)
		errs <- err
	}()
	// Wait until the queue is verifiably full.
	deadline := time.After(5 * time.Second)
	for sess.QueueDepth() != 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := sess.Capture(fr); !errors.Is(err, ErrBacklog) {
		t.Fatalf("capture on full queue = %v, want ErrBacklog", err)
	}
	if got := m.Snapshot().BacklogRejects; got != 1 {
		t.Fatalf("BacklogRejects = %d, want 1", got)
	}

	close(release) // release the worker; the queued captures must drain
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued capture failed: %v", err)
		}
	}
}

func TestBacklogBlocking(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	gate := make(chan struct{})
	var gateOnce sync.Once
	m.testOpGate = func(Op) { gateOnce.Do(func() { <-gate }) }

	sess, err := m.Open(SessionConfig{W: 16, H: 16, Format: frame.Gray8, QueueDepth: 1, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	fr := testFrame(16, 16, frame.Gray8, 0)

	const waiters = 3
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := sess.Capture(fr)
			errs <- err
		}()
	}
	select {
	case err := <-errs:
		t.Fatalf("blocking capture returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Good: everyone is blocked, nobody got ErrBacklog.
	}
	close(gate)
	for i := 0; i < waiters; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("blocked capture failed: %v", err)
		}
	}
	if got := m.Snapshot().BacklogRejects; got != 0 {
		t.Fatalf("BacklogRejects = %d, want 0 in blocking mode", got)
	}
}

func TestSessionLimitAndClose(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	defer m.Close()
	s1, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("open above limit = %v, want ErrSessionLimit", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Capture(testFrame(8, 8, frame.Gray8, 0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("capture after close = %v, want ErrSessionClosed", err)
	}
	// The freed slot must be reusable.
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("open after manager close = %v, want ErrManagerClosed", err)
	}
}

func TestOpenRejectsBadGeometry(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	if _, err := m.Open(SessionConfig{W: 0, H: 8, Format: frame.Gray8}); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestConcurrentSessionsIndependent(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	type geom struct {
		w, h int
		f    frame.Format
	}
	geoms := []geom{{32, 24, frame.Gray8}, {48, 48, frame.RGB24}, {64, 16, frame.Gray8}, {20, 20, frame.YUV444}}
	var wg sync.WaitGroup
	for gi, g := range geoms {
		wg.Add(1)
		go func(gi int, g geom) {
			defer wg.Done()
			sess, err := m.Open(SessionConfig{W: g.w, H: g.h, Format: g.f})
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			if err := sess.SetRegionLabels(region.List{region.FullFrame(g.w, g.h)}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 10; i++ {
				fr := testFrame(g.w, g.h, g.f, gi*100+i)
				if _, err := sess.Capture(fr); err != nil {
					t.Errorf("session %d capture %d: %v", gi, i, err)
					return
				}
				dec, err := sess.Decoded()
				if err != nil {
					t.Errorf("session %d decode %d: %v", gi, i, err)
					return
				}
				if !dec.Equal(fr) {
					t.Errorf("session %d frame %d: full-frame round trip mismatch", gi, i)
					return
				}
			}
		}(gi, g)
	}
	wg.Wait()

	snap := m.Snapshot()
	if snap.FramesCaptured != int64(len(geoms)*10) {
		t.Fatalf("FramesCaptured = %d, want %d", snap.FramesCaptured, len(geoms)*10)
	}
	if snap.DecodedFrames != int64(len(geoms)*10) {
		t.Fatalf("DecodedFrames = %d, want %d", snap.DecodedFrames, len(geoms)*10)
	}
	if snap.EncodedBytes == 0 {
		t.Fatal("EncodedBytes = 0")
	}
	cap := snap.OpLatency[OpCapture.String()]
	if cap.Count != uint64(len(geoms)*10) {
		t.Fatalf("capture latency count = %d, want %d", cap.Count, len(geoms)*10)
	}
	if cap.MeanNanos() <= 0 || cap.QuantileMicros(0.99) <= 0 {
		t.Fatalf("degenerate latency summary: %+v", cap)
	}
}

func TestSnapshotQueues(t *testing.T) {
	m := NewManager(Config{QueueDepth: 4})
	defer m.Close()
	s1, _ := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8})
	s2, _ := m.Open(SessionConfig{W: 16, H: 16, Format: frame.Gray8, QueueDepth: 9})
	snap := m.Snapshot()
	if snap.SessionsOpen != 2 || len(snap.Queues) != 2 {
		t.Fatalf("snapshot sessions = %d queues = %d, want 2/2", snap.SessionsOpen, len(snap.Queues))
	}
	if snap.Queues[0].SessionID != s1.ID() || snap.Queues[1].SessionID != s2.ID() {
		t.Fatalf("queues not sorted by id: %+v", snap.Queues)
	}
	if snap.Queues[0].Capacity != 4 || snap.Queues[1].Capacity != 9 {
		t.Fatalf("queue capacities = %d/%d, want 4/9", snap.Queues[0].Capacity, snap.Queues[1].Capacity)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.QuantileMicros(0.5) != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	h.Observe(500 * time.Nanosecond) // bucket 0 (<= 1 µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<= 4 µs)
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if s.MaxNanos != int64(100*time.Millisecond) {
		t.Fatalf("MaxNanos = %d", s.MaxNanos)
	}
	if s.Buckets[0] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if q := s.QuantileMicros(0.5); q != 4 {
		t.Fatalf("p50 = %d µs, want 4", q)
	}
	if q := s.QuantileMicros(1.0); q < 65536 {
		t.Fatalf("p100 = %d µs, want >= 65536 (100 ms bucket)", q)
	}
}

// TestOpenRejectionIsCheap asserts the resource-exhaustion fix: an Open
// rejected at the session limit must not construct the multi-MB rpx.System
// first. Admission is checked before construction, so the rejected path
// costs only a handful of small allocations.
func TestOpenRejectionIsCheap(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	defer m.Close()
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); err != nil {
		t.Fatal(err)
	}
	big := SessionConfig{W: 2048, H: 2048, Format: frame.RGB24, HistoryDepth: 8}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.Open(big); !errors.Is(err, ErrSessionLimit) {
			t.Fatalf("open above limit = %v, want ErrSessionLimit", err)
		}
	})
	// The 2048x2048 RGB24 pipeline alone needs a 12 MiB framebuffer; a
	// rejected open must stay in single-digit bookkeeping allocations.
	if allocs > 8 {
		t.Fatalf("rejected Open cost %.0f allocs, want <= 8", allocs)
	}
}

// TestSnapshotConcurrentWithOpenClose races stats scrapes against session
// churn: Snapshot copies the session list under the lock and reads
// per-session stats outside it, so the scrape must neither block churn nor
// trip the race detector reading a session that closes mid-scrape.
func TestSnapshotConcurrentWithOpenClose(t *testing.T) {
	m := NewManager(Config{MaxSessions: 32})
	defer m.Close()
	for i := 0; i < 8; i++ {
		if _, err := m.Open(SessionConfig{W: 16, H: 16, Format: frame.Gray8}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := m.Snapshot()
			if snap.SessionsOpen < 8 {
				t.Errorf("SessionsOpen = %d, want >= 8", snap.SessionsOpen)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		s, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Capture(testFrame(8, 8, frame.Gray8, i)); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	close(stop)
	<-snapDone
}

// TestIdleTTLEviction proves the janitor: an abandoned session is evicted
// after IdleTTL and frees its MaxSessions slot, while a session that keeps
// serving requests survives sweep after sweep.
func TestIdleTTLEviction(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2, IdleTTL: 150 * time.Millisecond, SweepInterval: 25 * time.Millisecond})
	defer m.Close()
	idle, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	evicted := false
	hookFired := make(chan struct{})
	idle.OnEvict(func() { close(hookFired) })
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := busy.SetRegionLabels(nil); err != nil {
			t.Fatalf("busy session died: %v", err)
		}
		if m.SessionsOpen() == 1 {
			evicted = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("idle session was not evicted within 5s")
	}
	select {
	case <-hookFired:
	case <-time.After(time.Second):
		t.Fatal("evict hook never fired")
	}
	if _, err := idle.Capture(testFrame(8, 8, frame.Gray8, 0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("capture on evicted session = %v, want ErrSessionClosed", err)
	}
	if got := m.Snapshot().SessionsEvicted; got != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", got)
	}
	// The freed slot is reusable.
	if _, err := m.Open(SessionConfig{W: 8, H: 8, Format: frame.Gray8}); err != nil {
		t.Fatalf("open after eviction: %v", err)
	}
}
