package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/wire"
)

// TCPConfig tunes the network front end.
type TCPConfig struct {
	// ReadTimeout bounds each blocking message read — an idle or stalled
	// client is disconnected after this long (default 2 minutes).
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply write (default 30 seconds).
	WriteTimeout time.Duration
	// MaxPayload caps a single message payload in bytes
	// (default wire.DefaultMaxPayload).
	MaxPayload int
}

// Defaults for TCPConfig zero values.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// TCPServer speaks the wire protocol on a listener, one session per
// connection, translating messages into Manager calls.
type TCPServer struct {
	mgr *Manager
	cfg TCPConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewTCPServer wraps a manager with the network front end.
func NewTCPServer(mgr *Manager, cfg TCPConfig) *TCPServer {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	return &TCPServer{mgr: mgr, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Manager returns the session manager behind the server.
func (s *TCPServer) Manager() *Manager { return s.mgr }

// Serve accepts connections until the listener is closed (via Shutdown).
// It returns nil on graceful shutdown.
func (s *TCPServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrManagerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, interrupts blocked reads, drains per-session
// queues, and waits for handlers to finish or ctx to expire. The manager is
// closed either way, so queued work is flushed before the process exits.
func (s *TCPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	for conn := range s.conns {
		// Wake handlers blocked in ReadMessage; they observe draining and
		// close their session gracefully (serving already-queued requests).
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	}
	s.mgr.Close()
	return err
}

// handle runs one connection's session loop.
func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	writeMsg := func(typ byte, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := wire.WriteMessage(bw, typ, payload, s.cfg.MaxPayload); err != nil {
			return err
		}
		return bw.Flush()
	}
	writeErr := func(code uint16, msg string) error {
		return writeMsg(wire.MsgError, wire.MarshalError(code, msg))
	}

	// The first message must be a valid HELLO.
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	typ, payload, err := wire.ReadMessage(br, s.cfg.MaxPayload)
	if err != nil {
		return
	}
	if typ != wire.MsgHello {
		writeErr(wire.CodeProto, fmt.Sprintf("first message must be HELLO, got %d", typ))
		return
	}
	hello, err := wire.UnmarshalHello(payload)
	if err != nil {
		writeErr(wire.CodeProto, err.Error())
		return
	}
	// Reject geometries whose CAPTURE/FRAME payloads could never fit the
	// payload cap at the handshake — otherwise every Decode reply of an
	// accepted session would fail ErrTooLarge and drop the connection with
	// no error ever reaching the client.
	if need := wire.FramePayloadSize(hello.W, hello.H, hello.Format); need > int64(s.cfg.MaxPayload) {
		writeErr(wire.CodeGeometry, fmt.Sprintf(
			"session geometry %dx%d %v needs %d-byte frame payloads, cap is %d",
			hello.W, hello.H, hello.Format, need, s.cfg.MaxPayload))
		return
	}
	sess, err := s.mgr.Open(SessionConfig{
		W: hello.W, H: hello.H, Format: hello.Format,
		HistoryDepth: hello.HistoryDepth,
		QueueDepth:   hello.QueueDepth,
		Block:        hello.Block,
		Parallelism:  hello.Parallelism,
	})
	if err != nil {
		code := wire.CodeBadRequest
		if errors.Is(err, ErrSessionLimit) || errors.Is(err, ErrManagerClosed) {
			code = wire.CodeSessionLimit
		}
		writeErr(code, err.Error())
		return
	}
	defer sess.Close()
	// When the idle janitor evicts this session, close the connection so a
	// handler blocked in ReadMessage wakes and tears down promptly.
	sess.OnEvict(func() { conn.Close() })
	if err := writeMsg(wire.MsgHelloAck, wire.MarshalHelloAck(wire.HelloAck{
		SessionID:  sess.ID(),
		MaxPayload: s.cfg.MaxPayload,
	})); err != nil {
		return
	}

	frameBytes := hello.W * hello.H * hello.Format.BytesPerPixel()
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		typ, payload, err := wire.ReadMessage(br, s.cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) {
				writeErr(wire.CodeTooLarge, err.Error())
			}
			// Disconnect, timeout, or shutdown wake-up: close the session
			// (its queued requests are drained by Close).
			return
		}
		if done := s.serveMsg(sess, writeMsg, writeErr, typ, payload, hello, frameBytes); done {
			return
		}
	}
}

// serveMsg dispatches one request message; it reports true when the
// connection should end.
func (s *TCPServer) serveMsg(sess *Session, writeMsg func(byte, []byte) error, writeErr func(uint16, string) error, typ byte, payload []byte, hello wire.Hello, frameBytes int) bool {
	fail := func(err error) bool {
		code := wire.CodeInternal
		switch {
		case errors.Is(err, ErrBacklog):
			code = wire.CodeBacklog
		case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrManagerClosed):
			code = wire.CodeSessionLimit
		}
		return writeErr(code, err.Error()) != nil
	}
	switch typ {
	case wire.MsgSetLabels:
		labels, err := wire.UnmarshalLabels(payload)
		if err != nil {
			return writeErr(wire.CodeProto, err.Error()) != nil
		}
		if err := sess.SetRegionLabels(labels); err != nil {
			if errors.Is(err, ErrBacklog) || errors.Is(err, ErrSessionClosed) {
				return fail(err)
			}
			return writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		return writeMsg(wire.MsgAck, nil) != nil

	case wire.MsgCapture:
		if len(payload) != frameBytes {
			return writeErr(wire.CodeBadRequest, fmt.Sprintf(
				"CAPTURE carries %d bytes, session %dx%d %v needs %d",
				len(payload), hello.W, hello.H, hello.Format, frameBytes)) != nil
		}
		fr, err := frame.FromPix(hello.W, hello.H, hello.Format, payload)
		if err != nil {
			return writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		cs, err := sess.Capture(fr)
		if err != nil {
			return fail(err)
		}
		return writeMsg(wire.MsgCaptureAck, wire.MarshalCaptureAck(wire.CaptureAck{
			FrameIndex:    cs.FrameIndex,
			EncodedPixels: cs.EncodedPixels,
			EncodedBytes:  cs.EncodedBytes,
			PixelFraction: cs.PixelFraction,
		})) != nil

	case wire.MsgDecode:
		fr, err := sess.Decoded()
		if err != nil {
			return fail(err)
		}
		return writeMsg(wire.MsgFrame, wire.MarshalFrame(fr)) != nil

	case wire.MsgDecodeWindow:
		win, err := wire.UnmarshalWindow(payload)
		if err != nil {
			return writeErr(wire.CodeProto, err.Error()) != nil
		}
		fr, err := sess.DecodeWindow(win.X, win.Y, win.W, win.H)
		if err != nil {
			if errors.Is(err, ErrBacklog) || errors.Is(err, ErrSessionClosed) {
				return fail(err)
			}
			return writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		return writeMsg(wire.MsgFrame, wire.MarshalFrame(fr)) != nil

	case wire.MsgGetEncoded:
		ef, err := sess.LastEncoded()
		if err != nil {
			return fail(err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			return fail(err)
		}
		return writeMsg(wire.MsgEncoded, buf.Bytes()) != nil

	case wire.MsgStats:
		b, err := json.Marshal(s.mgr.Snapshot())
		if err != nil {
			return fail(err)
		}
		return writeMsg(wire.MsgStatsAck, b) != nil

	case wire.MsgClose:
		writeMsg(wire.MsgAck, nil)
		return true

	default:
		return writeErr(wire.CodeProto, fmt.Sprintf("unexpected message type %d", typ)) != nil
	}
}
