package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/wire"
)

// connWriter is one connection's write side: a wire.MessageWriter (vectored
// header+payload assembly, safe for concurrent writers) plus a reusable
// marshaling scratch buffer. The scratch is single-owner: it belongs to the
// request/reply loop, and during streaming it is only touched again after
// the stream writer goroutine has been joined.
type connWriter struct {
	conn       net.Conn
	mw         *wire.MessageWriter
	timeout    time.Duration
	maxPayload int
	scratch    []byte
}

func newConnWriter(conn net.Conn, cfg TCPConfig) *connWriter {
	return &connWriter{
		conn:       conn,
		mw:         wire.NewMessageWriter(conn),
		timeout:    cfg.WriteTimeout,
		maxPayload: cfg.MaxPayload,
	}
}

// write frames and sends one message under the write deadline. Safe for
// concurrent use as long as callers do not share payload buffers.
func (cw *connWriter) write(typ byte, payload []byte) error {
	cw.conn.SetWriteDeadline(time.Now().Add(cw.timeout))
	return cw.mw.WriteMessage(typ, payload, cw.maxPayload)
}

// writeErr sends a typed ERROR, marshaling into the loop-owned scratch.
func (cw *connWriter) writeErr(code uint16, msg string) error {
	cw.scratch = wire.AppendError(cw.scratch[:0], code, msg)
	return cw.write(wire.MsgError, cw.scratch)
}

// TCPConfig tunes the network front end.
type TCPConfig struct {
	// ReadTimeout bounds each blocking message read — an idle or stalled
	// client is disconnected after this long (default 2 minutes).
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply write (default 30 seconds).
	WriteTimeout time.Duration
	// MaxPayload caps a single message payload in bytes
	// (default wire.DefaultMaxPayload).
	MaxPayload int
}

// Defaults for TCPConfig zero values.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// TCPServer speaks the wire protocol on a listener, one session per
// connection, translating messages into Manager calls.
type TCPServer struct {
	mgr *Manager
	cfg TCPConfig

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewTCPServer wraps a manager with the network front end.
func NewTCPServer(mgr *Manager, cfg TCPConfig) *TCPServer {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	return &TCPServer{mgr: mgr, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Manager returns the session manager behind the server.
func (s *TCPServer) Manager() *Manager { return s.mgr }

// Serve accepts connections until the listener is closed (via Shutdown).
// It returns nil on graceful shutdown.
func (s *TCPServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrManagerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, interrupts blocked reads, drains per-session
// queues, and waits for handlers to finish or ctx to expire. The manager is
// closed either way, so queued work is flushed before the process exits.
func (s *TCPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	for conn := range s.conns {
		// Wake handlers blocked in ReadMessage; they observe draining and
		// close their session gracefully (serving already-queued requests).
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	}
	s.mgr.Close()
	return err
}

// handle runs one connection's session loop.
func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	cw := newConnWriter(conn, s.cfg)

	// rbuf is this connection's reusable inbound payload buffer. Reuse is
	// safe because every payload is consumed before the next read: control
	// payloads are decoded into their own structs immediately, and CAPTURE
	// pixel payloads — which the frame wrapper aliases — are fully copied by
	// the encoder before Capture returns.
	var rbuf []byte

	// The first message must be a valid HELLO.
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	typ, payload, err := wire.ReadMessageInto(br, &rbuf, s.cfg.MaxPayload)
	if err != nil {
		return
	}
	if typ != wire.MsgHello {
		cw.writeErr(wire.CodeProto, fmt.Sprintf("first message must be HELLO, got %d", typ))
		return
	}
	hello, err := wire.UnmarshalHello(payload)
	if err != nil {
		cw.writeErr(wire.CodeProto, err.Error())
		return
	}
	// Reject geometries whose CAPTURE/FRAME payloads could never fit the
	// payload cap at the handshake — otherwise every Decode reply of an
	// accepted session would fail ErrTooLarge and drop the connection with
	// no error ever reaching the client.
	if need := wire.FramePayloadSize(hello.W, hello.H, hello.Format); need > int64(s.cfg.MaxPayload) {
		cw.writeErr(wire.CodeGeometry, fmt.Sprintf(
			"session geometry %dx%d %v needs %d-byte frame payloads, cap is %d",
			hello.W, hello.H, hello.Format, need, s.cfg.MaxPayload))
		return
	}
	sess, err := s.mgr.Open(SessionConfig{
		W: hello.W, H: hello.H, Format: hello.Format,
		HistoryDepth: hello.HistoryDepth,
		QueueDepth:   hello.QueueDepth,
		Block:        hello.Block,
		Parallelism:  hello.Parallelism,
	})
	if err != nil {
		code := wire.CodeBadRequest
		if errors.Is(err, ErrSessionLimit) || errors.Is(err, ErrManagerClosed) {
			code = wire.CodeSessionLimit
		}
		cw.writeErr(code, err.Error())
		return
	}
	defer sess.Close()
	// When the idle janitor evicts this session, close the connection so a
	// handler blocked in ReadMessage wakes and tears down promptly.
	sess.OnEvict(func() { conn.Close() })
	// The ack echoes the negotiated version: a v2 HELLO gets the legacy
	// 12-byte form (all an old client can parse), a v3 HELLO the extended
	// form that confirms streaming is available, and a v4 HELLO additionally
	// carries the granted codec bits. The server grants exactly the
	// capabilities it implements, intersected with what the client asked for.
	var codec uint8
	if hello.Version >= 4 {
		codec = hello.Codec & wire.CodecPackedMask
	}
	packed := codec&wire.CodecPackedMask != 0
	cw.scratch = wire.AppendHelloAck(cw.scratch[:0], wire.HelloAck{
		SessionID:  sess.ID(),
		MaxPayload: s.cfg.MaxPayload,
		Version:    hello.Version,
		Codec:      codec,
	})
	if err := cw.write(wire.MsgHelloAck, cw.scratch); err != nil {
		return
	}

	frameBytes := hello.W * hello.H * hello.Format.BytesPerPixel()
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		typ, payload, err := wire.ReadMessageInto(br, &rbuf, s.cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) {
				cw.writeErr(wire.CodeTooLarge, err.Error())
			}
			// Disconnect, timeout, or shutdown wake-up: close the session
			// (its queued requests are drained by Close).
			return
		}
		if typ == wire.MsgSubscribe {
			// Streaming mode runs its own read loop and hands the write
			// side to a dedicated writer until the subscription ends.
			if done := s.serveStream(sess, conn, br, &rbuf, cw, hello, payload, packed); done {
				return
			}
			continue
		}
		if done := s.serveMsg(sess, cw, typ, payload, hello, frameBytes, packed); done {
			return
		}
	}
}

// serveStream runs one push subscription's lifecycle: validate and attach,
// ack, then split the connection — a writer goroutine owns the write side
// (FRAME_PUSH batches, the final ACK or error), while this loop keeps
// reading CREDIT grants until UNSUBSCRIBE or teardown. It reports true when
// the connection should end; false resumes the request/reply loop.
func (s *TCPServer) serveStream(sess *Session, conn net.Conn, br *bufio.Reader, rbuf *[]byte, cw *connWriter, hello wire.Hello, payload []byte, packed bool) bool {
	if hello.Version < 3 {
		return cw.writeErr(wire.CodeProto, fmt.Sprintf(
			"SUBSCRIBE requires protocol v3, session negotiated v%d", hello.Version)) != nil
	}
	req, err := wire.UnmarshalSubscribe(payload)
	if err != nil {
		return cw.writeErr(wire.CodeProto, err.Error()) != nil
	}
	target := sess
	if req.Target != 0 && req.Target != sess.ID() {
		t, ok := s.mgr.Lookup(req.Target)
		if !ok {
			return cw.writeErr(wire.CodeBadRequest, fmt.Sprintf(
				"SUBSCRIBE target session %d not found", req.Target)) != nil
		}
		target = t
	}
	sub, err := target.Subscribe(int(req.Credit), int(req.Batch), packed)
	if err != nil {
		return cw.writeErr(wire.CodeSessionLimit, err.Error()) != nil
	}
	cw.scratch = wire.AppendSubscribeAck(cw.scratch[:0], wire.SubscribeAck{
		SubID:   sub.ID(),
		NextSeq: target.NextSeq(),
	})
	if err := cw.write(wire.MsgSubscribeAck, cw.scratch); err != nil {
		sub.Abort()
		return true
	}

	// From here the writer goroutine owns cw for writing (its MessageWriter
	// serializes the actual sends); this loop only writes again after
	// joining writerDone, so cw.scratch is never shared. The one exception
	// is the v5 LABELS_APPLIED reply, which must interleave with live
	// FRAME_PUSH traffic: it marshals into its own buffer (never
	// cw.scratch) and relies on the MessageWriter's internal lock to keep
	// whole messages atomic against the stream writer.
	writerDone := make(chan error, 1)
	go func() { writerDone <- s.streamWriter(sub, conn, cw) }()

	var fbScratch []byte
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		typ, payload, err := wire.ReadMessageInto(br, rbuf, s.cfg.MaxPayload)
		if err != nil {
			// Disconnect, timeout, shutdown wake-up, or the writer ended
			// the stream server-side and woke us: tear the stream down.
			sub.Abort()
			<-writerDone
			return true
		}
		switch typ {
		case wire.MsgCredit:
			c, err := wire.UnmarshalCredit(payload)
			if err != nil || c.SubID != sub.ID() {
				sub.Abort()
				<-writerDone
				return true
			}
			sub.Grant(int(c.N))
		case wire.MsgUnsubscribe:
			u, err := wire.UnmarshalUnsubscribe(payload)
			if err != nil || u.SubID != sub.ID() {
				sub.Abort()
				<-writerDone
				return true
			}
			sub.Unsubscribe()
			// The writer drains the already-accepted frames and emits the
			// final ACK; then the write side is ours again.
			return <-writerDone != nil
		case wire.MsgStreamLabels:
			if hello.Version < 5 {
				sub.Abort()
				<-writerDone
				return cw.writeErr(wire.CodeProto, fmt.Sprintf(
					"STREAM_LABELS requires protocol v5, session negotiated v%d", hello.Version)) != nil
			}
			sl, err := wire.UnmarshalStreamLabels(payload)
			if err != nil || sl.SubID != sub.ID() {
				sub.Abort()
				<-writerDone
				return true
			}
			// Apply through the target session's worker queue: the update is
			// serialized with in-flight captures, so the boundary is exact. A
			// rejected workload (bad geometry, backlog) reports its code in
			// the reply and leaves the stream — and the previous labels —
			// intact; only transport failures end the subscription.
			ack := wire.LabelsApplied{SubID: sub.ID()}
			seq, err := target.SetRegionLabelsAt(sl.Labels)
			switch {
			case err == nil:
				ack.AppliedSeq = seq
				s.mgr.streamLabels.Add(1)
			case errors.Is(err, ErrBacklog):
				ack.Code, ack.Msg = wire.CodeBacklog, err.Error()
			case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrManagerClosed):
				ack.Code, ack.Msg = wire.CodeUnavailable, err.Error()
			default:
				ack.Code, ack.Msg = wire.CodeBadRequest, err.Error()
			}
			fbScratch = wire.AppendLabelsApplied(fbScratch[:0], ack)
			if cw.write(wire.MsgLabelsApplied, fbScratch) != nil {
				sub.Abort()
				<-writerDone
				return true
			}
		default:
			// Only CREDIT and UNSUBSCRIBE are legal while streaming.
			sub.Abort()
			<-writerDone
			return cw.writeErr(wire.CodeProto, fmt.Sprintf(
				"message type %d not allowed while streaming", typ)) != nil
		}
	}
}

// streamWriter owns the connection's write side for the life of one
// subscription: it blocks for published frames, batches what is already
// buffered (splitting on the payload cap), and finishes with the final ACK
// (clean unsubscribe) or a typed error (producing session closed).
func (s *TCPServer) streamWriter(sub *Subscription, conn net.Conn, cw *connWriter) error {
	// The writer's own marshaling state — it runs concurrently with the
	// stream read loop, so it must not share cw.scratch. The FramePush
	// frames slice and the serialized-payload scratch are both reused
	// across batches: steady-state streaming marshals without allocating.
	var scratch []byte
	push := wire.FramePush{SubID: sub.ID()}
	for {
		items, dropped, ok := sub.Next()
		if !ok {
			break
		}
		// Split the batch so no single FRAME_PUSH exceeds the payload cap
		// (an item bigger than the cap alone fails the write, mirroring
		// what GET_ENCODED would do for the same frame).
		for len(items) > 0 {
			size := wire.PushHeaderOverhead
			n := 0
			for _, it := range items {
				rec := wire.PushRecordOverhead + len(it.enc)
				if n > 0 && size+rec > s.cfg.MaxPayload {
					break
				}
				size += rec
				n++
			}
			push.Dropped = dropped
			push.Frames = push.Frames[:0]
			for _, it := range items[:n] {
				push.Frames = append(push.Frames, wire.PushFrame{
					Seq: it.seq,
					Stats: wire.CaptureAck{
						FrameIndex:    it.stats.FrameIndex,
						EncodedPixels: it.stats.EncodedPixels,
						EncodedBytes:  it.stats.EncodedBytes,
						PixelFraction: it.stats.PixelFraction,
					},
					Enc: it.enc,
				})
			}
			scratch = wire.AppendFramePush(scratch[:0], push)
			if err := cw.write(wire.MsgFramePush, scratch); err != nil {
				sub.Abort()
				for _, _, ok := sub.Next(); ok; _, _, ok = sub.Next() {
					// Drain so the in-flight gauge returns to zero.
				}
				return err
			}
			s.mgr.noteFramesPushed(n)
			items = items[n:]
		}
	}
	switch sub.Reason() {
	case ReasonUnsubscribed:
		// Echo the subscription id so the client can match the ack.
		scratch = wire.AppendUnsubscribe(scratch[:0], wire.Unsubscribe{SubID: sub.ID()})
		return cw.write(wire.MsgAck, scratch)
	case ReasonSessionClosed:
		scratch = wire.AppendError(scratch[:0], wire.CodeUnavailable,
			"server: subscribed session closed")
		err := cw.write(wire.MsgError, scratch)
		// Wake the connection's reader: the stream cannot continue, and
		// the client was just told so.
		conn.SetReadDeadline(time.Now())
		return err
	default:
		// ReasonConnClosed: the reader is already tearing down.
		return nil
	}
}

// serveMsg dispatches one request message; it reports true when the
// connection should end.
func (s *TCPServer) serveMsg(sess *Session, cw *connWriter, typ byte, payload []byte, hello wire.Hello, frameBytes int, packed bool) bool {
	fail := func(err error) bool {
		code := wire.CodeInternal
		switch {
		case errors.Is(err, ErrBacklog):
			code = wire.CodeBacklog
		case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrManagerClosed):
			code = wire.CodeSessionLimit
		}
		return cw.writeErr(code, err.Error()) != nil
	}
	switch typ {
	case wire.MsgSetLabels:
		labels, err := wire.UnmarshalLabels(payload)
		if err != nil {
			return cw.writeErr(wire.CodeProto, err.Error()) != nil
		}
		if err := sess.SetRegionLabels(labels); err != nil {
			if errors.Is(err, ErrBacklog) || errors.Is(err, ErrSessionClosed) {
				return fail(err)
			}
			return cw.writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		return cw.write(wire.MsgAck, nil) != nil

	case wire.MsgCapture:
		if len(payload) != frameBytes {
			return cw.writeErr(wire.CodeBadRequest, fmt.Sprintf(
				"CAPTURE carries %d bytes, session %dx%d %v needs %d",
				len(payload), hello.W, hello.H, hello.Format, frameBytes)) != nil
		}
		fr, err := frame.FromPix(hello.W, hello.H, hello.Format, payload)
		if err != nil {
			return cw.writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		cs, err := sess.Capture(fr)
		if err != nil {
			return fail(err)
		}
		cw.scratch = wire.AppendCaptureAck(cw.scratch[:0], wire.CaptureAck{
			FrameIndex:    cs.FrameIndex,
			EncodedPixels: cs.EncodedPixels,
			EncodedBytes:  cs.EncodedBytes,
			PixelFraction: cs.PixelFraction,
		})
		return cw.write(wire.MsgCaptureAck, cw.scratch) != nil

	case wire.MsgDecode:
		fr, err := sess.Decoded()
		if err != nil {
			return fail(err)
		}
		cw.scratch = wire.AppendFrame(cw.scratch[:0], fr)
		return cw.write(wire.MsgFrame, cw.scratch) != nil

	case wire.MsgDecodeWindow:
		win, err := wire.UnmarshalWindow(payload)
		if err != nil {
			return cw.writeErr(wire.CodeProto, err.Error()) != nil
		}
		fr, err := sess.DecodeWindow(win.X, win.Y, win.W, win.H)
		if err != nil {
			if errors.Is(err, ErrBacklog) || errors.Is(err, ErrSessionClosed) {
				return fail(err)
			}
			return cw.writeErr(wire.CodeBadRequest, err.Error()) != nil
		}
		cw.scratch = wire.AppendFrame(cw.scratch[:0], fr)
		return cw.write(wire.MsgFrame, cw.scratch) != nil

	case wire.MsgGetEncoded:
		// The RPXE container is serialized on the session worker directly
		// into this connection's scratch — no intermediate EncodedFrame copy
		// and no per-request buffer. Sessions that negotiated the packed
		// codec at HELLO get the v2 container; everyone else the raw v1.
		enc, err := sess.LastEncodedTo(cw.scratch[:0], packed)
		if err != nil {
			return fail(err)
		}
		cw.scratch = enc
		return cw.write(wire.MsgEncoded, cw.scratch) != nil

	case wire.MsgStats:
		b, err := json.Marshal(s.mgr.Snapshot())
		if err != nil {
			return fail(err)
		}
		return cw.write(wire.MsgStatsAck, b) != nil

	case wire.MsgClose:
		cw.write(wire.MsgAck, nil)
		return true

	default:
		return cw.writeErr(wire.CodeProto, fmt.Sprintf("unexpected message type %d", typ)) != nil
	}
}
