package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Health states carried in the /healthz body.
const (
	// HealthOK means the process is serving and accepting sessions.
	HealthOK = "ok"
	// HealthDraining means graceful shutdown has begun: existing sessions
	// are being flushed and no new ones should be routed here.
	HealthDraining = "draining"
)

// HealthStatus is the machine-readable /healthz body. The HTTP status code
// (200 serving, 503 draining) keeps dumb probes and load balancers working;
// the JSON body is what lets the rpxgw backend watcher distinguish a
// *draining* backend (cordon it and migrate its sessions in an orderly way)
// from a *dead* one (evict it and recover reactively) — a bare 503 cannot
// tell those apart from, say, a misconfigured proxy in between.
type HealthStatus struct {
	// State is HealthOK or HealthDraining.
	State string `json:"state"`
	// Sessions is the process's open-session count at the time of the
	// probe — the load weight a gateway uses to place migrated sessions.
	Sessions int `json:"sessions"`
}

// Health serves /healthz for rpxd and rpxgw: 200 with
// {"state":"ok","sessions":N} while serving, flipping to 503 with
// {"state":"draining",...} the moment graceful drain begins.
type Health struct {
	draining atomic.Bool
	sessions func() int
}

// NewHealth returns a Health reporting the given open-session count;
// sessions may be nil (reported as 0).
func NewHealth(sessions func() int) *Health { return &Health{sessions: sessions} }

// SetDraining flips the endpoint to 503/draining. It is one-way: a
// draining process never goes back to serving.
func (h *Health) SetDraining() { h.draining.Store(true) }

// Draining reports whether SetDraining has been called.
func (h *Health) Draining() bool { return h.draining.Load() }

// ServeHTTP implements the /healthz handler.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	st := HealthStatus{State: HealthOK}
	if h.sessions != nil {
		st.Sessions = h.sessions()
	}
	code := http.StatusOK
	if h.Draining() {
		st.State = HealthDraining
		code = http.StatusServiceUnavailable
	}
	b, err := json.Marshal(st)
	if err != nil { // unreachable for this struct; fail loudly anyway
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// ParseHealth decodes a /healthz body into its machine-readable status.
func ParseHealth(b []byte) (HealthStatus, error) {
	var st HealthStatus
	if err := json.Unmarshal(b, &st); err != nil {
		return HealthStatus{}, fmt.Errorf("server: parse healthz body: %w", err)
	}
	switch st.State {
	case HealthOK, HealthDraining:
	default:
		return HealthStatus{}, fmt.Errorf("server: healthz state %q unknown", st.State)
	}
	return st, nil
}
