package server

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/rpx"
)

// Streaming push subscriptions (protocol v3).
//
// A Subscription attaches to one session's encoded-frame stream and buffers
// frames the session's worker publishes until a transport writer drains
// them. Flow control is a credit ledger: the subscription holds at most as
// many undelivered frames as the client has granted credit for, so a
// stalled subscriber bounds server memory by construction and can never
// block the capture path or other sessions — frames produced with no credit
// available are dropped for that subscriber and counted, never queued
// unboundedly and never blocking the publishing worker.

// CloseReason says why a subscription ended; the transport writer picks its
// final message from it.
type CloseReason uint8

// Subscription close reasons.
const (
	// ReasonNone: still open.
	ReasonNone CloseReason = iota
	// ReasonUnsubscribed: the client asked; drain, then a final ACK.
	ReasonUnsubscribed
	// ReasonSessionClosed: the producing session closed or was evicted.
	ReasonSessionClosed
	// ReasonConnClosed: the subscriber's own transport died.
	ReasonConnClosed
)

// pushItem is one published frame: the serialized RPXE container plus the
// capture statistics, shared read-only across all subscribers.
type pushItem struct {
	seq   uint64
	stats rpx.CaptureStats
	enc   []byte
}

// Subscription is one subscriber's view of a session's frame stream.
type Subscription struct {
	id    uint64
	sess  *Session
	batch int
	// packed selects the RPXE v2 packed-metadata container for this
	// subscriber's frames (negotiated at HELLO via wire.CodecPackedMask).
	packed bool

	// ch buffers accepted-but-undelivered frames. Its capacity is the
	// credit window cap, and offer only sends after consuming a credit, so
	// len(ch)+credit <= wire.MaxCreditWindow always holds and a send can
	// never block the publishing worker.
	ch chan pushItem

	mu      sync.Mutex
	credit  int
	granted uint64 // lifetime credits accepted (initial + grants, post-clamp)
	dropped uint64 // frames missed while out of credit
	reason  CloseReason
}

// ID returns the server-assigned subscription id.
func (sub *Subscription) ID() uint64 { return sub.id }

// Batch returns the negotiated frames-per-FRAME_PUSH bound.
func (sub *Subscription) Batch() int { return sub.batch }

// Buffered returns the accepted-but-undelivered frame count (the in-flight
// gauge reads this; tests assert it never exceeds granted credit).
func (sub *Subscription) Buffered() int { return len(sub.ch) }

// Credit returns the currently available (unconsumed) credit.
func (sub *Subscription) Credit() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.credit
}

// Granted returns the lifetime credits this subscription accepted.
func (sub *Subscription) Granted() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.granted
}

// Dropped returns the cumulative frames missed while out of credit.
func (sub *Subscription) Dropped() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// offer hands one published frame to the subscription. It never blocks: a
// frame either consumes a credit and enters the buffer, or is dropped and
// counted. Called from the producing session's worker goroutine.
func (sub *Subscription) offer(it pushItem) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.reason != ReasonNone {
		return
	}
	if sub.credit <= 0 {
		sub.dropped++
		sub.sess.mgr.streamDropped.Add(1)
		return
	}
	sub.credit--
	sub.ch <- it // cannot block: see the ch capacity invariant
}

// Grant adds n credits, clamping the outstanding window (available credit
// plus undelivered buffered frames) at wire.MaxCreditWindow. Grants after
// close are ignored.
func (sub *Subscription) Grant(n int) {
	if n <= 0 {
		return
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.reason != ReasonNone {
		return
	}
	sub.credit += n
	// len(ch) may shrink concurrently as the writer drains; reading it once
	// here only ever under-grants, never breaks the window invariant.
	if max := wire.MaxCreditWindow - len(sub.ch); sub.credit > max {
		n -= sub.credit - max
		sub.credit = max
	}
	if n > 0 {
		sub.granted += uint64(n)
	}
}

// close ends the subscription: offers stop, the buffer is sealed so a
// reader draining ch observes end-of-stream after the already-accepted
// frames. Idempotent; the first reason wins.
func (sub *Subscription) close(reason CloseReason) {
	sub.mu.Lock()
	if sub.reason != ReasonNone {
		sub.mu.Unlock()
		return
	}
	sub.reason = reason
	// Safe: every send into ch happens in offer while holding sub.mu and
	// checking reason, so no send can race this close.
	close(sub.ch)
	sub.mu.Unlock()

	sub.sess.dropSubscription(sub)
	sub.sess.mgr.removeSubscription(sub)
}

// Reason returns why the subscription ended (ReasonNone while open).
func (sub *Subscription) Reason() CloseReason {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.reason
}

// Unsubscribe ends the subscription cleanly on the client's behalf: frames
// already accepted remain readable until the channel drains.
func (sub *Subscription) Unsubscribe() { sub.close(ReasonUnsubscribed) }

// Abort ends the subscription because the subscriber's transport died.
func (sub *Subscription) Abort() { sub.close(ReasonConnClosed) }

// Next blocks for the next accepted frame, then opportunistically drains up
// to batch-1 more without blocking — one call builds one FRAME_PUSH. The
// second return is the cumulative dropped count; ok=false means the
// subscription ended and the buffer is fully drained.
func (sub *Subscription) Next() (items []pushItem, dropped uint64, ok bool) {
	it, ok := <-sub.ch
	if !ok {
		return nil, sub.Dropped(), false
	}
	items = append(items, it)
	for len(items) < sub.batch {
		select {
		case it, more := <-sub.ch:
			if !more {
				// Closed mid-drain: deliver what we have; the next call
				// observes end-of-stream.
				return items, sub.Dropped(), true
			}
			items = append(items, it)
		default:
			return items, sub.Dropped(), true
		}
	}
	return items, sub.Dropped(), true
}

// Subscribe attaches a push subscription to this session's frame stream.
// credit is the initial window, batch the frames-per-push bound (both
// validated by the wire layer; batch 0 means 1). packed selects the RPXE
// v2 packed-metadata container for this subscriber's frames; subscribers
// on the same session may mix forms freely.
func (s *Session) Subscribe(credit, batch int, packed bool) (*Subscription, error) {
	if batch <= 0 {
		batch = 1
	}
	if batch > wire.MaxBatch {
		batch = wire.MaxBatch
	}
	if credit < 0 {
		credit = 0
	}
	if credit > wire.MaxCreditWindow {
		credit = wire.MaxCreditWindow
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.mu.Unlock()

	sub := &Subscription{
		sess:    s,
		batch:   batch,
		packed:  packed,
		ch:      make(chan pushItem, wire.MaxCreditWindow),
		credit:  credit,
		granted: uint64(credit),
	}
	sub.id = s.mgr.addSubscription(sub)

	s.subMu.Lock()
	s.subs = append(s.subs, sub)
	s.subMu.Unlock()
	return sub, nil
}

// NextSeq returns the sequence number of the next frame a new subscription
// would observe (the session's published-frame high-water mark).
func (s *Session) NextSeq() uint64 {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.pubSeq > 0 {
		return s.pubSeq
	}
	// No capture has been published yet; the next frame carries the
	// pipeline's next frame index. FrameIndex is monitoring-safe only
	// between requests, so fall back to 0 for a virgin session: frame
	// indices start at the configured first index which defaults to 0.
	return 0
}

// publish hands one captured frame to every attached subscription. It runs
// on the session worker goroutine immediately after a successful capture,
// so the borrowed frame is exactly the one just captured; the RPXE container is
// serialized once and the bytes shared read-only across subscribers.
func (s *Session) publish(cs rpx.CaptureStats) {
	seq := uint64(cs.FrameIndex)
	s.subMu.Lock()
	s.pubSeq = seq + 1
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	subs := append([]*Subscription(nil), s.subs...)
	s.subMu.Unlock()

	// Borrow the live frame (we are on the worker goroutine, so it is
	// stable) and serialize it at most once per negotiated container form
	// into right-sized buffers. The buffers are deliberately fresh
	// allocations, not pooled: their bytes are shared read-only across
	// every subscriber's queue with no refcount, so their lifetime ends
	// whenever the last writer drains them — GC ownership is the contract.
	// At most two allocations per published frame (one raw, one packed,
	// each only if some subscriber negotiated it), fan-out free.
	ef := s.sys.BorrowLastEncoded()
	if ef == nil {
		return
	}
	var rawEnc, packedEnc []byte
	for _, sub := range subs {
		it := pushItem{seq: seq, stats: cs}
		if sub.packed {
			if packedEnc == nil {
				packedEnc = ef.AppendPacked(make([]byte, 0, ef.PackedMaxSize()))
			}
			it.enc = packedEnc
		} else {
			if rawEnc == nil {
				rawEnc = ef.AppendTo(make([]byte, 0, ef.EncodedSize()))
			}
			it.enc = rawEnc
		}
		sub.offer(it)
	}
	s.mgr.streamPublished.Add(int64(len(subs)))
}

// dropSubscription detaches a closed subscription from the session.
func (s *Session) dropSubscription(sub *Subscription) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			return
		}
	}
}

// closeSubscriptions ends every attached subscription because the session
// is going away; their writers drain buffered frames and then report the
// session closure to their clients.
func (s *Session) closeSubscriptions() {
	s.subMu.Lock()
	subs := append([]*Subscription(nil), s.subs...)
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.close(ReasonSessionClosed)
	}
}

// Lookup returns the live session with the given id — the SUBSCRIBE
// Target resolution path for cross-connection fan-out.
func (m *Manager) Lookup(id uint64) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// addSubscription registers a subscription and assigns its id.
func (m *Manager) addSubscription(sub *Subscription) uint64 {
	m.streamSubsOpened.Add(1)
	m.subMu.Lock()
	defer m.subMu.Unlock()
	m.nextSubID++
	id := m.nextSubID
	if m.subscriptions == nil {
		m.subscriptions = make(map[uint64]*Subscription)
	}
	m.subscriptions[id] = sub
	return id
}

// removeSubscription unregisters a closed subscription.
func (m *Manager) removeSubscription(sub *Subscription) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	delete(m.subscriptions, sub.id)
}

// StreamInflight sums accepted-but-undelivered frames across all open
// subscriptions — the rpxd_stream_inflight gauge.
func (m *Manager) StreamInflight() int {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	total := 0
	for _, sub := range m.subscriptions {
		total += sub.Buffered()
	}
	return total
}

// SubscriptionsOpen returns the number of live subscriptions.
func (m *Manager) SubscriptionsOpen() int {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	return len(m.subscriptions)
}

// registerStreamMetrics publishes the streaming series into the registry;
// called from registerMetrics.
func (m *Manager) registerStreamMetrics(reg *obs.Registry) {
	reg.CounterFunc("rpxd_stream_subscriptions_opened_total", "Push subscriptions opened over the process lifetime.",
		func() uint64 { return uint64(m.streamSubsOpened.Load()) })
	reg.CounterFunc("rpxd_stream_frames_published_total", "Frames offered to subscriptions (one per frame per subscriber).",
		func() uint64 { return uint64(m.streamPublished.Load()) })
	reg.CounterFunc("rpxd_stream_frames_pushed_total", "Frames delivered to subscribers in FRAME_PUSH messages.",
		func() uint64 { return uint64(m.streamPushed.Load()) })
	reg.CounterFunc("rpxd_stream_frames_dropped_total", "Frames dropped because a subscription was out of credit.",
		func() uint64 { return uint64(m.streamDropped.Load()) })
	reg.CounterFunc("rpxd_stream_labels_total", "Label workloads applied through in-stream feedback (STREAM_LABELS).",
		func() uint64 { return uint64(m.streamLabels.Load()) })
	reg.GaugeFunc("rpxd_stream_subscriptions_open", "Currently open push subscriptions.",
		func() float64 { return float64(m.SubscriptionsOpen()) })
	reg.GaugeFunc("rpxd_stream_inflight", "Accepted-but-undelivered frames buffered across all subscriptions; bounded by granted credit.",
		func() float64 { return float64(m.StreamInflight()) })
}

// noteFramesPushed records frames actually written to a subscriber.
func (m *Manager) noteFramesPushed(n int) { m.streamPushed.Add(int64(n)) }
