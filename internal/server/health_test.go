package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthServing verifies the serving shape: 200 plus a JSON body the
// gateway watcher can parse, with the live session count.
func TestHealthServing(t *testing.T) {
	n := 3
	h := NewHealth(func() int { return n })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code = %d, want 200", resp.StatusCode)
	}
	st, err := ParseHealth(body)
	if err != nil {
		t.Fatalf("ParseHealth(%q): %v", body, err)
	}
	if st.State != HealthOK || st.Sessions != 3 {
		t.Fatalf("status = %+v, want state ok sessions 3", st)
	}

	// Drain flips the code to 503 and the state to draining, while the
	// session count stays live.
	h.SetDraining()
	n = 1
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining code = %d, want 503", resp.StatusCode)
	}
	st, err = ParseHealth(body)
	if err != nil {
		t.Fatalf("ParseHealth(%q): %v", body, err)
	}
	if st.State != HealthDraining || st.Sessions != 1 {
		t.Fatalf("draining status = %+v, want state draining sessions 1", st)
	}
}

// TestHealthNilSessions covers the zero-dependency construction.
func TestHealthNilSessions(t *testing.T) {
	rec := httptest.NewRecorder()
	NewHealth(nil).ServeHTTP(rec, nil)
	st, err := ParseHealth(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != HealthOK || st.Sessions != 0 {
		t.Fatalf("status = %+v, want ok/0", st)
	}
}

// TestParseHealthRejects pins the failure modes the watcher must treat as
// probe errors, not states.
func TestParseHealthRejects(t *testing.T) {
	for _, bad := range []string{"", "ok", `{"state":"limping"}`, `{"state":5}`} {
		if _, err := ParseHealth([]byte(bad)); err == nil {
			t.Errorf("ParseHealth(%q) succeeded, want error", bad)
		}
	}
}
