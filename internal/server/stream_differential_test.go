package server_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/rpx"
	"repro/rpx/client"
)

// startDiffServer is the external-test-package twin of startTestServer
// (this file lives outside package server to break the test import cycle
// through rpx/client).
func startDiffServer(t *testing.T, mcfg server.Config, tcfg server.TCPConfig) string {
	t.Helper()
	srv := server.NewTCPServer(server.NewManager(mcfg), tcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// The differential harness proves the v3 push path byte-identical to the v2
// request/reply path: for randomized geometries and workloads, every
// FRAME_PUSH record a subscriber receives must equal — payload, row
// offsets, encoding mask, the whole serialized EncodedFrame — what a
// parallel reference session sees via Capture + LastEncoded when fed the
// exact same frames, and carry the same CaptureStats. Each case is driven
// by its seed alone, so any failure reproduces from the logged seed.
//
// Each case runs twice: once raw (v1 container, byte-identity against the
// reference serialization) and once with the packed codec negotiated at the
// subscriber's HELLO (v2 container — compared by content: decoded pixels,
// mask codes, and row offsets must round-trip exactly, and the record must
// respect the PackedMaxSize bound).

// diffCase runs one randomized producer/subscriber/reference trio against
// the server at addr. The producer and reference sessions encode at the
// given pipeline parallelism; packed selects the subscriber's codec.
// Returned errors carry the seed.
func diffCase(addr string, seed int64, parallelism int, packed bool) error {
	rng := rand.New(rand.NewSource(seed))
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("seed %d: %s", seed, fmt.Sprintf(format, args...))
	}

	w := 16 + rng.Intn(80)
	h := 16 + rng.Intn(60)
	format := rpx.Gray8
	if rng.Intn(3) == 0 {
		format = rpx.RGB24
	}
	frames := 3 + rng.Intn(6)

	// Random well-formed workload, sorted by Y as the runtime expects.
	labels := make([]rpx.RegionLabel, 1+rng.Intn(4))
	for i := range labels {
		lw := 1 + rng.Intn(w)
		lh := 1 + rng.Intn(h)
		skip := 1 + rng.Intn(4)
		labels[i] = rpx.RegionLabel{
			X: rng.Intn(w - lw + 1), Y: rng.Intn(h - lh + 1),
			W: lw, H: lh,
			Stride: 1 + rng.Intn(3),
			Skip:   skip,
			Phase:  rng.Intn(skip),
		}
	}
	rpx.RegionList(labels).SortByY()

	cfg := client.Config{W: w, H: h, Format: format, Block: true, Parallelism: parallelism}
	producer, err := client.Dial(addr, cfg)
	if err != nil {
		return fail("dial producer: %v", err)
	}
	defer producer.Close()
	reference, err := client.Dial(addr, cfg)
	if err != nil {
		return fail("dial reference: %v", err)
	}
	defer reference.Close()
	for _, s := range []*client.Session{producer, reference} {
		if err := s.SetRegionLabels(labels); err != nil {
			return fail("set labels %+v: %v", labels, err)
		}
	}
	subSess, err := client.Dial(addr, client.Config{W: 8, H: 8, Format: rpx.Gray8, PackedMask: packed})
	if err != nil {
		return fail("dial subscriber: %v", err)
	}
	defer subSess.Close()
	st, err := subSess.Subscribe(client.SubscribeOptions{
		Target: producer.ID(),
		Credit: frames + rng.Intn(32),
		Batch:  1 + rng.Intn(8),
	})
	if err != nil {
		return fail("subscribe: %v", err)
	}

	// Feed both sessions identical frames; record the reference view.
	fr := rpx.NewFrame(w, h, format)
	wantStats := make([]rpx.CaptureStats, frames)
	wantRaw := make([][]byte, frames)
	wantEF := make([]*rpx.EncodedFrame, frames)
	for i := 0; i < frames; i++ {
		rng.Read(fr.Pix)
		pcs, err := producer.Capture(fr)
		if err != nil {
			return fail("producer capture %d: %v", i, err)
		}
		rcs, err := reference.Capture(fr)
		if err != nil {
			return fail("reference capture %d: %v", i, err)
		}
		if pcs != rcs {
			return fail("capture %d stats diverge: push-side %+v, reference %+v", i, pcs, rcs)
		}
		wantStats[i] = rcs
		ef, err := reference.LastEncoded()
		if err != nil {
			return fail("reference LastEncoded %d: %v", i, err)
		}
		var buf bytes.Buffer
		if _, err := ef.WriteTo(&buf); err != nil {
			return fail("serialize reference frame %d: %v", i, err)
		}
		wantRaw[i] = buf.Bytes()
		wantEF[i] = ef
	}

	// Drain the stream: every pushed record must match the reference
	// byte-for-byte (raw) or content-for-content (packed), and
	// stat-for-stat, with no gaps or drops.
	for i := 0; i < frames; i++ {
		f, err := st.Recv()
		if err != nil {
			return fail("recv %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			return fail("recv %d has seq %d — gap or reorder", i, f.Seq)
		}
		if f.Dropped != 0 {
			return fail("recv %d reports %d dropped with ample credit", i, f.Dropped)
		}
		if f.Stats != wantStats[i] {
			return fail("frame %d stats: push %+v, reference %+v", i, f.Stats, wantStats[i])
		}
		got, err := f.Decode()
		if err != nil {
			return fail("frame %d does not decode: %v", i, err)
		}
		if packed {
			// The v2 record is compared by content: the encoded pixel
			// payload, every mask code, and every row offset must round-trip
			// exactly — pinned by re-serializing the parsed record in v1
			// form, which must reproduce the reference bytes — and the
			// record must respect the worst-case size bound.
			if len(f.Raw) > got.PackedMaxSize() {
				return fail("frame %d packed record is %d bytes, exceeds PackedMaxSize %d",
					i, len(f.Raw), got.PackedMaxSize())
			}
			if !got.Mask.Equal(wantEF[i].Mask) {
				return fail("frame %d mask codes diverge after packed round trip", i)
			}
			for y := range wantEF[i].RowOffsets {
				if got.RowOffsets[y] != wantEF[i].RowOffsets[y] {
					return fail("frame %d row offset %d: packed %d, reference %d",
						i, y, got.RowOffsets[y], wantEF[i].RowOffsets[y])
				}
			}
			if !bytes.Equal(got.Pix, wantEF[i].Pix) {
				return fail("frame %d encoded pixels diverge after packed round trip", i)
			}
			if !bytes.Equal(got.AppendTo(nil), wantRaw[i]) {
				return fail("frame %d v1 re-serialization diverges from reference", i)
			}
		} else if !bytes.Equal(f.Raw, wantRaw[i]) {
			return fail("frame %d bytes diverge from reference (%d vs %d bytes)", i, len(f.Raw), len(wantRaw[i]))
		}
	}
	if err := st.Close(); err != nil {
		return fail("unsubscribe: %v", err)
	}
	return nil
}

// TestStreamDifferential runs the randomized differential suite raw and
// packed at pipeline parallelism 1, 2, and 8 — 20 cases per cell, 120
// total. Parallelism is both the sessions' encode/decode worker count and
// the number of concurrently running cases.
func TestStreamDifferential(t *testing.T) {
	addr := startDiffServer(t, server.Config{}, server.TCPConfig{})
	const casesPer = 20
	for _, par := range []int{1, 2, 8} {
		for _, packed := range []bool{false, true} {
			par, packed := par, packed
			name := fmt.Sprintf("parallel%d/raw", par)
			if packed {
				name = fmt.Sprintf("parallel%d/packed", par)
			}
			t.Run(name, func(t *testing.T) {
				sem := make(chan struct{}, par)
				var wg sync.WaitGroup
				for c := 0; c < casesPer; c++ {
					seed := int64(100_000*par + c)
					wg.Add(1)
					sem <- struct{}{}
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						if err := diffCase(addr, seed, par, packed); err != nil {
							t.Error(err)
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}
