package server

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/wire"
)

// The soak drives one producer session against three subscribers with
// deliberately mismatched drain rates and checks the credit ledger's
// invariants the whole way:
//
//   - in-flight never exceeds granted credit: for every subscription,
//     delivered + buffered ≤ granted, and buffered never exceeds the
//     window — a stalled subscriber cannot make the server buffer grow;
//   - no frame is silently lost: at the end, delivered + dropped equals
//     the frames published for every subscriber, and sequence numbers are
//     strictly increasing (no duplicates, no reorders);
//   - a stalled subscriber keeps every frame inside its credit window —
//     the window is filled in order, then later frames drop (counted).

const soakFrames = 520 // 500 while the stalled subscriber sleeps, 20 after

// soakConsumer drains a subscription with a per-batch ledger check and
// records delivered seqs.
type soakConsumer struct {
	sub       *Subscription
	delivered []uint64
	errs      []string
}

func (c *soakConsumer) drainBatch() bool {
	items, _, ok := c.sub.Next()
	for _, it := range items {
		if n := len(c.delivered); n > 0 && it.seq <= c.delivered[n-1] {
			c.errs = append(c.errs, fmt.Sprintf("seq %d after %d: duplicate or reorder", it.seq, c.delivered[n-1]))
		}
		c.delivered = append(c.delivered, it.seq)
	}
	// Ledger invariant: every delivered or buffered frame consumed one
	// granted credit. Buffered may grow concurrently, but can never push
	// the sum past the cumulative grant.
	if got, granted := uint64(len(c.delivered)+c.sub.Buffered()), c.sub.Granted(); got > granted {
		c.errs = append(c.errs, fmt.Sprintf("in-flight %d exceeds granted %d", got, granted))
	}
	if b := c.sub.Buffered(); b > wire.MaxCreditWindow {
		c.errs = append(c.errs, fmt.Sprintf("buffered %d exceeds the window", b))
	}
	return ok
}

func TestStreamCreditSoak(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	reg := obs.NewRegistry()
	m.registerMetrics(reg)

	sess, err := m.Open(SessionConfig{W: 32, H: 32, Format: frame.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRegionLabels(region.List{region.FullFrame(32, 32)}); err != nil {
		t.Fatal(err)
	}

	subscribe := func(credit, batch int) *Subscription {
		sub, err := sess.Subscribe(credit, batch, false)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	trickle := &soakConsumer{sub: subscribe(1, 1)}
	stalled := &soakConsumer{sub: subscribe(64, 4)}
	greedy := &soakConsumer{sub: subscribe(wire.MaxCreditWindow, 8)}

	var wg sync.WaitGroup
	stalledResumed := make(chan struct{}) // stalled has drained its window and re-granted
	producerDone := make(chan struct{})

	// Producer: 500 frames while the stalled subscriber sleeps, then —
	// once it has resumed — 20 more it must not miss.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(producerDone)
		fr := frame.New(32, 32, frame.Gray8)
		for i := 0; i < soakFrames; i++ {
			if i == 500 {
				<-stalledResumed
			}
			for p := range fr.Pix {
				fr.Pix[p] = byte(i + p)
			}
			if _, err := sess.Capture(fr); err != nil {
				t.Errorf("capture %d: %v", i, err)
				return
			}
		}
	}()

	// Trickle: one credit at a time — drain a frame, grant one more.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for trickle.drainBatch() {
			trickle.sub.Grant(1)
		}
	}()

	// Greedy: drain as fast as possible on an ample window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for greedy.drainBatch() {
		}
	}()

	// Stalled: sleep 2s while the producer rushes ahead, then verify the
	// window survived intact, re-grant, and keep up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Second)
		for len(stalled.delivered) < 64 {
			if !stalled.drainBatch() {
				stalled.errs = append(stalled.errs, "subscription closed before the stalled window drained")
				return
			}
		}
		// The first 64 frames are exactly seqs 0..63: nothing inside the
		// credit window was lost while the subscriber slept.
		for i, seq := range stalled.delivered[:64] {
			if seq != uint64(i) {
				stalled.errs = append(stalled.errs, fmt.Sprintf("window slot %d holds seq %d", i, seq))
			}
		}
		stalled.sub.Grant(wire.MaxCreditWindow)
		close(stalledResumed)
		for stalled.drainBatch() {
		}
	}()

	// End the streams once the producer is done: unsubscribe closes each
	// channel; consumers drain what is buffered and observe end-of-stream.
	<-producerDone
	trickle.sub.Unsubscribe()
	greedy.sub.Unsubscribe()
	stalled.sub.Unsubscribe()
	wg.Wait()

	for name, c := range map[string]*soakConsumer{"trickle": trickle, "stalled": stalled, "greedy": greedy} {
		for _, e := range c.errs {
			t.Errorf("%s: %s", name, e)
		}
		// Conservation: every published frame was delivered or counted as
		// dropped — none vanished.
		if got := uint64(len(c.delivered)) + c.sub.Dropped(); got != soakFrames {
			t.Errorf("%s: delivered %d + dropped %d = %d, want %d published frames",
				name, len(c.delivered), c.sub.Dropped(), got, soakFrames)
		}
	}
	// Greedy never ran out of window: the full sequence, in order.
	if len(greedy.delivered) != soakFrames || greedy.sub.Dropped() != 0 {
		t.Errorf("greedy delivered %d with %d dropped, want all %d", len(greedy.delivered), greedy.sub.Dropped(), soakFrames)
	}
	// Stalled missed nothing after resuming: frames 500..519 all arrived.
	if n := len(stalled.delivered); n < 84 || stalled.delivered[n-1] != soakFrames-1 {
		t.Errorf("stalled delivered %d frames ending at %v, want 84 ending at %d",
			n, stalled.delivered[max(0, n-1):], soakFrames-1)
	}

	// The inflight gauge drained to zero and reports through the registry.
	if got := m.StreamInflight(); got != 0 {
		t.Errorf("StreamInflight = %d after full drain", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// published counts one offer per frame per subscriber: 520 × 3.
	for _, series := range []string{"rpxd_stream_inflight 0", "rpxd_stream_frames_published_total 1560"} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("registry exposition missing %q", series)
		}
	}
}

// TestStreamStalledSubscriberAllocs pins the bounded-memory claim: once a
// subscriber's window is exhausted, each further published frame is dropped
// with zero allocations — a stalled subscriber cannot grow server memory.
func TestStreamStalledSubscriberAllocs(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	sess, err := m.Open(SessionConfig{W: 16, H: 16, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Subscribe(0, 1, false) // zero credit: every offer drops
	if err != nil {
		t.Fatal(err)
	}
	enc := make([]byte, 256)
	var seq uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sub.offer(pushItem{seq: seq, enc: enc})
		seq++
	})
	if allocs != 0 {
		t.Fatalf("dropping a frame on an exhausted window costs %.1f allocs/frame, want 0", allocs)
	}
	if sub.Dropped() == 0 {
		t.Fatal("offers were not dropped; the measurement measured nothing")
	}
	if sub.Buffered() != 0 {
		t.Fatalf("zero-credit subscription buffered %d frames", sub.Buffered())
	}
}
