package server

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/wire"
)

// startTestServer returns a serving TCPServer and its address.
func startTestServer(t *testing.T, mcfg Config, tcfg TCPConfig) (*TCPServer, string) {
	t.Helper()
	srv := NewTCPServer(NewManager(mcfg), tcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func readExpect(t *testing.T, conn net.Conn, want byte) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != want {
		if typ == wire.MsgError {
			re, _ := wire.UnmarshalError(payload)
			t.Fatalf("got error reply %v, want type %d", re, want)
		}
		t.Fatalf("got message type %d, want %d", typ, want)
	}
	return payload
}

func readError(t *testing.T, conn net.Conn, wantCode uint16) *wire.RemoteError {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got message type %d, want ERROR", typ)
	}
	re, err := wire.UnmarshalError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != wantCode {
		t.Fatalf("error code = %d (%s), want %d", re.Code, re.Message, wantCode)
	}
	return re
}

func TestTCPRejectsNonHelloFirst(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgDecode, nil, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeProto)
}

func TestTCPRejectsBadHello(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	payload := wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8})
	payload[4] = 99 // corrupt the protocol version
	if err := wire.WriteMessage(conn, wire.MsgHello, payload, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeProto)
}

func TestTCPEnforcesPayloadCap(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{MaxPayload: 4096})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	// A message above the cap draws TOO_LARGE and a disconnect — not an OOM.
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeTooLarge)
}

func TestTCPSessionLimitOverWire(t *testing.T) {
	_, addr := startTestServer(t, Config{MaxSessions: 1}, TCPConfig{})
	hello := wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8})
	c1 := dialRaw(t, addr)
	if err := wire.WriteMessage(c1, wire.MsgHello, hello, 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, c1, wire.MsgHelloAck)
	c2 := dialRaw(t, addr)
	if err := wire.WriteMessage(c2, wire.MsgHello, hello, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, c2, wire.CodeSessionLimit)
}

func TestTCPCaptureSizeMismatch(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeBadRequest)
	// The connection survives a bad request: a correct capture still works.
	if err := wire.WriteMessage(conn, wire.MsgSetLabels, wire.MarshalLabels(nil), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgAck)
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 16*16), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgCaptureAck)
}

func TestTCPGracefulShutdownDisconnectsIdleClients(t *testing.T) {
	srv, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	if srv.Manager().SessionsOpen() != 1 {
		t.Fatalf("SessionsOpen = %d, want 1", srv.Manager().SessionsOpen())
	}

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if srv.Manager().SessionsOpen() != 0 {
		t.Fatalf("SessionsOpen after shutdown = %d, want 0", srv.Manager().SessionsOpen())
	}
	// New connections must be refused or dropped without a session.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.SetReadDeadline(time.Now().Add(time.Second))
		if err := wire.WriteMessage(c, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 8, H: 8, Format: frame.Gray8}), 0); err == nil {
			if _, _, err := wire.ReadMessage(c, 0); err == nil {
				t.Fatal("post-shutdown connection was served")
			}
		}
		c.Close()
	}
}

// contextWithTimeout is a tiny local helper avoiding a context import dance
// in table helpers.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// TestTCPRejectsOversizeGeometry is the handshake-time guard: a HELLO whose
// frame payload could never fit the payload cap must draw a typed GEOMETRY
// error instead of opening a session whose every Decode reply would fail
// ErrTooLarge and drop the connection with no message.
func TestTCPRejectsOversizeGeometry(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{MaxPayload: 4096})
	// 64x64 Gray8 needs 64*64+9 = 4105 bytes of FRAME payload: over the cap.
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 64, H: 64, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeGeometry)
	// A giant RGB24 session (the motivating report) is rejected the same way.
	conn2 := dialRaw(t, addr)
	if err := wire.WriteMessage(conn2, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 4096, H: 4096, Format: frame.RGB24}), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn2, wire.CodeGeometry)
	// Just under the cap still negotiates: 63x63 Gray8 = 3978 bytes.
	conn3 := dialRaw(t, addr)
	if err := wire.WriteMessage(conn3, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 63, H: 63, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn3, wire.MsgHelloAck)
}

// TestTCPIdleSessionEvicted drives the idle TTL end to end: a connection
// that negotiates a session and then goes silent is evicted — its session
// slot freed and its connection closed — well before the read timeout.
func TestTCPIdleSessionEvicted(t *testing.T) {
	srv, addr := startTestServer(t,
		Config{IdleTTL: 150 * time.Millisecond, SweepInterval: 25 * time.Millisecond},
		TCPConfig{ReadTimeout: time.Hour})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)

	// The eviction must close our connection: the blocking read returns.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadMessage(conn, 0); err == nil {
		t.Fatal("evicted connection still delivered a message")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Manager().SessionsOpen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SessionsOpen = %d after eviction, want 0", srv.Manager().SessionsOpen())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Manager().Snapshot().SessionsEvicted; got != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", got)
	}
}
