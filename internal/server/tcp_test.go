package server

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/wire"
)

// startTestServer returns a serving TCPServer and its address.
func startTestServer(t *testing.T, mcfg Config, tcfg TCPConfig) (*TCPServer, string) {
	t.Helper()
	srv := NewTCPServer(NewManager(mcfg), tcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func readExpect(t *testing.T, conn net.Conn, want byte) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != want {
		if typ == wire.MsgError {
			re, _ := wire.UnmarshalError(payload)
			t.Fatalf("got error reply %v, want type %d", re, want)
		}
		t.Fatalf("got message type %d, want %d", typ, want)
	}
	return payload
}

func readError(t *testing.T, conn net.Conn, wantCode uint16) *wire.RemoteError {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got message type %d, want ERROR", typ)
	}
	re, err := wire.UnmarshalError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if re.Code != wantCode {
		t.Fatalf("error code = %d (%s), want %d", re.Code, re.Message, wantCode)
	}
	return re
}

func TestTCPRejectsNonHelloFirst(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgDecode, nil, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeProto)
}

func TestTCPRejectsBadHello(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	payload := wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8})
	payload[4] = 99 // corrupt the protocol version
	if err := wire.WriteMessage(conn, wire.MsgHello, payload, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeProto)
}

func TestTCPEnforcesPayloadCap(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{MaxPayload: 4096})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	// A message above the cap draws TOO_LARGE and a disconnect — not an OOM.
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeTooLarge)
}

func TestTCPSessionLimitOverWire(t *testing.T) {
	_, addr := startTestServer(t, Config{MaxSessions: 1}, TCPConfig{})
	hello := wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8})
	c1 := dialRaw(t, addr)
	if err := wire.WriteMessage(c1, wire.MsgHello, hello, 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, c1, wire.MsgHelloAck)
	c2 := dialRaw(t, addr)
	if err := wire.WriteMessage(c2, wire.MsgHello, hello, 0); err != nil {
		t.Fatal(err)
	}
	readError(t, c2, wire.CodeSessionLimit)
}

func TestTCPCaptureSizeMismatch(t *testing.T) {
	_, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	readError(t, conn, wire.CodeBadRequest)
	// The connection survives a bad request: a correct capture still works.
	if err := wire.WriteMessage(conn, wire.MsgSetLabels, wire.MarshalLabels(nil), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgAck)
	if err := wire.WriteMessage(conn, wire.MsgCapture, make([]byte, 16*16), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgCaptureAck)
}

func TestTCPGracefulShutdownDisconnectsIdleClients(t *testing.T) {
	srv, addr := startTestServer(t, Config{}, TCPConfig{})
	conn := dialRaw(t, addr)
	if err := wire.WriteMessage(conn, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 16, H: 16, Format: frame.Gray8}), 0); err != nil {
		t.Fatal(err)
	}
	readExpect(t, conn, wire.MsgHelloAck)
	if srv.Manager().SessionsOpen() != 1 {
		t.Fatalf("SessionsOpen = %d, want 1", srv.Manager().SessionsOpen())
	}

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if srv.Manager().SessionsOpen() != 0 {
		t.Fatalf("SessionsOpen after shutdown = %d, want 0", srv.Manager().SessionsOpen())
	}
	// New connections must be refused or dropped without a session.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.SetReadDeadline(time.Now().Add(time.Second))
		if err := wire.WriteMessage(c, wire.MsgHello, wire.MarshalHello(wire.Hello{W: 8, H: 8, Format: frame.Gray8}), 0); err == nil {
			if _, _, err := wire.ReadMessage(c, 0); err == nil {
				t.Fatal("post-shutdown connection was served")
			}
		}
		c.Close()
	}
}

// contextWithTimeout is a tiny local helper avoiding a context import dance
// in table helpers.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
