// Package server is the concurrent heart of rpxd: a session manager that
// multiplexes many independent rhythmic-pixel pipelines behind one process.
//
// rpx.System is single-goroutine by contract, so the manager gives every
// session a dedicated worker goroutine and a bounded request queue. Callers
// submit operations (label updates, captures, decodes) and either block or
// fail fast with ErrBacklog when a session falls behind — backpressure is
// explicit, never unbounded buffering. All cross-session statistics are
// atomic snapshots, so the stats endpoint can run hot without touching a
// worker.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/rpx"
)

// Typed failures the manager surfaces to transports and clients.
var (
	// ErrBacklog means the session's bounded request queue is full and the
	// session was opened in fail-fast mode.
	ErrBacklog = errors.New("server: session request queue full")
	// ErrSessionClosed means the session no longer accepts requests.
	ErrSessionClosed = errors.New("server: session closed")
	// ErrManagerClosed means the manager is shut down.
	ErrManagerClosed = errors.New("server: manager closed")
	// ErrSessionLimit means the manager is at MaxSessions.
	ErrSessionLimit = errors.New("server: session limit reached")
)

// Op identifies a session operation for latency accounting.
type Op uint8

// Session operations.
const (
	OpSetLabels Op = iota
	OpCapture
	OpDecode
	OpDecodeWindow
	OpLastEncoded
	numOps
)

// String returns the op's stats key.
func (o Op) String() string {
	switch o {
	case OpSetLabels:
		return "set_labels"
	case OpCapture:
		return "capture"
	case OpDecode:
		return "decode"
	case OpDecodeWindow:
		return "decode_window"
	case OpLastEncoded:
		return "last_encoded"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Config tunes a Manager.
type Config struct {
	// MaxSessions caps concurrently open sessions (default 64).
	MaxSessions int
	// QueueDepth is the default per-session request queue bound
	// (default 16); sessions may negotiate their own at open.
	QueueDepth int
	// IdleTTL evicts sessions that have served no request for this long, so
	// abandoned connections cannot pin MaxSessions (0 = never evict).
	IdleTTL time.Duration
	// SweepInterval is how often the idle janitor scans (default IdleTTL/4,
	// floored at 100ms). Only meaningful when IdleTTL > 0.
	SweepInterval time.Duration
	// Metrics, when non-nil, is the observability registry the manager
	// publishes into: aggregate counters, per-op latency histograms, and a
	// per-live-session collector (queue depth, frames, core encoder/decoder
	// and PMMU traffic counters). Registration happens once in NewManager.
	Metrics *obs.Registry
	// Trace, when non-nil, records every session's frame-path spans
	// (classify → pack → push → decode) tagged with the session id.
	Trace *obs.Tracer
}

// DefaultMaxSessions is the session cap when Config.MaxSessions is zero.
const DefaultMaxSessions = 64

// DefaultQueueDepth is the per-session queue bound when unset.
const DefaultQueueDepth = 16

// Manager owns the sessions of one rpxd process.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*Session
	reserved int // admitted opens still constructing their pipeline
	nextID   uint64
	closed   bool

	sweepQuit chan struct{}
	sweepDone chan struct{}

	// Push-subscription registry (protocol v3 streaming), its own lock so
	// subscription churn never contends with Open/Close.
	subMu         sync.Mutex
	subscriptions map[uint64]*Subscription
	nextSubID     uint64

	// Aggregate counters, atomic so Snapshot never blocks a worker.
	sessionsOpened   atomic.Int64
	sessionsEvicted  atomic.Int64
	framesCaptured   atomic.Int64
	encodedBytes     atomic.Int64
	decodedFrames    atomic.Int64
	backlogRejects   atomic.Int64
	streamSubsOpened atomic.Int64
	streamPublished  atomic.Int64
	streamPushed     atomic.Int64
	streamDropped    atomic.Int64
	streamLabels     atomic.Int64

	opHist [numOps]Histogram

	// testOpGate, when set (tests only), runs inside the worker before each
	// operation executes — it lets tests hold a worker mid-request to fill
	// queues deterministically.
	testOpGate func(Op)
}

// NewManager returns a Manager with cfg defaults applied.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.IdleTTL > 0 && cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTTL / 4
		if cfg.SweepInterval < 100*time.Millisecond {
			cfg.SweepInterval = 100 * time.Millisecond
		}
	}
	m := &Manager{cfg: cfg, sessions: make(map[uint64]*Session)}
	if cfg.Metrics != nil {
		m.registerMetrics(cfg.Metrics)
	}
	if cfg.IdleTTL > 0 {
		m.sweepQuit = make(chan struct{})
		m.sweepDone = make(chan struct{})
		go m.sweepIdle()
	}
	return m
}

// registerMetrics publishes the manager into a registry: the aggregate
// atomic counters it already keeps (read at scrape time, no double
// bookkeeping), the per-op latency histograms, and a collector that emits
// one series set per live session — series appear when a session opens and
// vanish when it closes or is evicted.
func (m *Manager) registerMetrics(reg *obs.Registry) {
	reg.CounterFunc("rpxd_sessions_opened_total", "Sessions opened over the process lifetime.",
		func() uint64 { return uint64(m.sessionsOpened.Load()) })
	reg.CounterFunc("rpxd_sessions_evicted_total", "Sessions evicted by the idle janitor.",
		func() uint64 { return uint64(m.sessionsEvicted.Load()) })
	reg.CounterFunc("rpxd_frames_captured_total", "Frames captured across all sessions.",
		func() uint64 { return uint64(m.framesCaptured.Load()) })
	reg.CounterFunc("rpxd_encoded_bytes_total", "Encoded payload plus metadata bytes written across all sessions.",
		func() uint64 { return uint64(m.encodedBytes.Load()) })
	reg.CounterFunc("rpxd_decoded_frames_total", "Full-frame and windowed decodes served across all sessions.",
		func() uint64 { return uint64(m.decodedFrames.Load()) })
	reg.CounterFunc("rpxd_backlog_rejects_total", "Requests rejected with ErrBacklog by fail-fast sessions.",
		func() uint64 { return uint64(m.backlogRejects.Load()) })
	reg.GaugeFunc("rpxd_sessions_open", "Currently open sessions.",
		func() float64 { return float64(m.SessionsOpen()) })
	reg.GaugeFunc("rpxd_queue_depth", "Queued (unserved) requests across all sessions.",
		func() float64 {
			total := 0
			for _, s := range m.openSessions() {
				total += s.QueueDepth()
			}
			return float64(total)
		})
	for op := Op(0); op < numOps; op++ {
		reg.RegisterHistogram("rpxd_op_latency_seconds",
			"Session operation latency (queue wait plus execution).",
			&m.opHist[op], obs.L("op", op.String()))
	}
	m.registerStreamMetrics(reg)
	reg.Collect(m.collectSessions)
}

// collectSessions emits the per-session series: queue occupancy and the
// pipeline's core traffic counters (encoder, decoder, PMMU metadata reads),
// plus per-session per-op latency histograms. Stats are read through the
// rpx.System monitoring-safe accessors, never through the request queue.
func (m *Manager) collectSessions(emit func(obs.Sample)) {
	gauge := func(name, help string, v float64, labels ...obs.Label) {
		emit(obs.Sample{Name: name, Help: help, Kind: obs.KindGauge, Labels: labels, Value: v})
	}
	counter := func(name, help string, v float64, labels ...obs.Label) {
		emit(obs.Sample{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v})
	}
	for _, s := range m.openSessions() {
		id := obs.L("session", strconv.FormatUint(s.id, 10))
		sys := s.SystemStats()
		dec := s.sys.DecoderStats()
		enc := s.sys.EncoderStats()
		gauge("rpxd_session_queue_depth", "Queued requests of one session.",
			float64(s.QueueDepth()), id)
		counter("rpxd_session_frames_captured_total", "Frames captured by one session.",
			float64(sys.FramesCaptured), id)
		counter("rpxd_session_bytes_written_total", "Encoded payload plus metadata bytes one session wrote.",
			float64(sys.BytesWritten), id)
		counter("rpxd_session_bytes_read_total", "Encoded bytes one session's decoder fetched.",
			float64(sys.BytesRead), id)
		counter("rpxd_session_pixels_in_total", "Sensor pixels one session's encoder consumed.",
			float64(enc.PixelsIn), id)
		counter("rpxd_session_pixels_out_total", "Pixels surviving encoding for one session.",
			float64(enc.PixelsOut), id)
		counter("rpxd_session_decoder_sub_requests_total", "PMMU sub-requests one session's decoder issued.",
			float64(dec.SubRequests), id)
		counter("rpxd_session_metadata_bits_read_total", "EncMask metadata bits one session's PMMU examined.",
			float64(dec.MetadataBitsRead), id)
		for op := Op(0); op < numOps; op++ {
			hs := s.opHist[op].Snapshot()
			if hs.Count == 0 {
				continue
			}
			emit(obs.Sample{
				Name:   "rpxd_session_op_latency_seconds",
				Help:   "Per-session operation latency (queue wait plus execution).",
				Kind:   obs.KindHistogram,
				Labels: []obs.Label{id, obs.L("op", op.String())},
				Hist:   hs,
			})
		}
	}
}

// openSessions snapshots the live session list under the manager lock.
func (m *Manager) openSessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	return open
}

// sweepIdle is the idle-session janitor: it periodically evicts sessions
// whose last request is older than IdleTTL.
func (m *Manager) sweepIdle() {
	defer close(m.sweepDone)
	tick := time.NewTicker(m.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.sweepQuit:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-m.cfg.IdleTTL).UnixNano()
		m.mu.Lock()
		var idle []*Session
		for _, s := range m.sessions {
			if s.lastUsed.Load() < cutoff {
				idle = append(idle, s)
			}
		}
		m.mu.Unlock()
		for _, s := range idle {
			s.evict()
		}
	}
}

// SessionConfig describes one session's negotiated pipeline.
type SessionConfig struct {
	// W, H and Format fix the session's frame geometry.
	W, H   int
	Format frame.Format
	// HistoryDepth is the decoder scratchpad depth (0 = rpx default).
	HistoryDepth int
	// QueueDepth bounds this session's request queue (0 = manager default).
	QueueDepth int
	// Block selects blocking backpressure instead of ErrBacklog.
	Block bool
	// Parallelism is the number of row-band encode/decode workers the
	// session's pipeline uses (0 or 1 = sequential reference path).
	Parallelism int
}

// Session is one client's rhythmic-pixel pipeline: an rpx.System owned by a
// dedicated worker goroutine, fed through a bounded request queue. Session
// methods are safe for concurrent use; operations are serialized by the
// worker in arrival order.
type Session struct {
	id  uint64
	cfg SessionConfig
	mgr *Manager
	sys *rpx.System

	reqs chan *request
	quit chan struct{}
	done chan struct{}

	// lastUsed is the UnixNano of the newest submitted request, read by the
	// manager's idle janitor without taking the session lock.
	lastUsed atomic.Int64

	// opHist is this session's own per-op latency view, observed alongside
	// the manager aggregate and exposed by the metrics collector as
	// rpxd_session_op_latency_seconds{session,op}.
	opHist [numOps]Histogram

	// subMu guards the push subscribers attached to this session's frame
	// stream and the published-frame high-water mark.
	subMu  sync.Mutex
	subs   []*Subscription
	pubSeq uint64

	mu        sync.Mutex
	closed    bool
	evictHook func()
	pending   sync.WaitGroup
}

type request struct {
	op     Op
	labels region.List
	frame  *frame.Frame
	window wire4
	// encInto is the caller-supplied scratch OpLastEncoded serializes the
	// RPXE container into (worker-side, while the frame is stable); wantFrame
	// asks for a deep-copied *EncodedFrame instead. packed selects the RPXE
	// v2 packed-metadata container for the serialized form.
	encInto   []byte
	wantFrame bool
	packed    bool
	start     time.Time
	reply     chan result
}

type wire4 struct{ x, y, w, h int }

type result struct {
	cs  rpx.CaptureStats
	fr  *frame.Frame
	ef  *core.EncodedFrame
	enc []byte
	// seq is the first frame index that observes a label update
	// (OpSetLabels only): read from the pipeline on the worker right after
	// the labels are applied, before any later capture can run.
	seq uint64
	err error
}

// Open creates a session and starts its worker. Admission is checked before
// the pipeline is constructed: a rejected open (manager closed or at
// MaxSessions) costs a few bookkeeping allocations, never the multi-MB
// framebuffer and history buffers an admitted session needs.
func (m *Manager) Open(cfg SessionConfig) (*Session, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = m.cfg.QueueDepth
	}

	// Admission first: reserve a slot under the lock, so concurrent opens
	// racing for the last slots cannot overshoot MaxSessions while their
	// pipelines are being built outside the lock.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	if len(m.sessions)+m.reserved >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d)", ErrSessionLimit, m.cfg.MaxSessions)
	}
	m.reserved++
	m.mu.Unlock()

	var opts []rpx.Option
	if cfg.HistoryDepth > 0 {
		opts = append(opts, rpx.WithHistoryDepth(cfg.HistoryDepth))
	}
	if cfg.Parallelism > 1 {
		opts = append(opts, rpx.WithParallelism(cfg.Parallelism))
	}
	sys, err := rpx.NewSystem(cfg.W, cfg.H, cfg.Format, opts...)

	m.mu.Lock()
	m.reserved--
	if err == nil && m.closed {
		err = ErrManagerClosed
	}
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	s := &Session{
		id:   m.nextID,
		cfg:  cfg,
		mgr:  m,
		sys:  sys,
		reqs: make(chan *request, cfg.QueueDepth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.lastUsed.Store(time.Now().UnixNano())
	m.sessions[s.id] = s
	m.mu.Unlock()
	m.sessionsOpened.Add(1)
	if m.cfg.Trace != nil {
		// Tag the pipeline's frame-path spans with the session id. The
		// worker has not started yet, so this respects the rpx.System
		// single-goroutine contract.
		sys.SetTracer(m.cfg.Trace, s.id)
	}

	go s.worker()
	return s, nil
}

// worker drains the request queue until it is closed, executing each
// operation against the single-goroutine rpx.System.
func (s *Session) worker() {
	defer close(s.done)
	for req := range s.reqs {
		if gate := s.mgr.testOpGate; gate != nil {
			gate(req.op)
		}
		res := s.execute(req)
		if req.op == OpCapture && res.err == nil {
			// Publish to push subscribers before acking the capture: once
			// the producer sees its CAPTURE_ACK, every subscription has
			// been offered the frame (accepted or counted as dropped).
			s.publish(res.cs)
		}
		lat := time.Since(req.start)
		s.mgr.opHist[req.op].Observe(lat)
		s.opHist[req.op].Observe(lat)
		req.reply <- res
	}
}

func (s *Session) execute(req *request) result {
	switch req.op {
	case OpSetLabels:
		if err := s.sys.SetRegionLabels(req.labels); err != nil {
			return result{err: err}
		}
		// FrameIndex is the index the next Capture will use, and pending
		// labels commit at that capture's frame boundary — so this is the
		// deterministic first sequence number the new workload governs,
		// regardless of pipeline parallelism or codec. Reading it here on
		// the worker is race-free: no capture can interleave.
		return result{seq: uint64(s.sys.FrameIndex())}
	case OpCapture:
		cs, err := s.sys.Capture(req.frame)
		if err == nil {
			s.mgr.framesCaptured.Add(1)
			s.mgr.encodedBytes.Add(int64(cs.EncodedBytes))
		}
		return result{cs: cs, err: err}
	case OpDecode:
		fr, err := s.sys.Decoded()
		if err == nil {
			s.mgr.decodedFrames.Add(1)
		}
		return result{fr: fr, err: err}
	case OpDecodeWindow:
		fr, err := s.sys.DecodeWindow(req.window.x, req.window.y, req.window.w, req.window.h)
		if err == nil {
			s.mgr.decodedFrames.Add(1)
		}
		return result{fr: fr, err: err}
	case OpLastEncoded:
		// Borrow, don't copy: on the worker goroutine the live frame is
		// stable, so both variants (serialize into caller scratch, or hand
		// out an owned deep copy) read it without aliasing it to the caller.
		ef := s.sys.BorrowLastEncoded()
		if ef == nil {
			return result{err: fmt.Errorf("server: no frame captured yet")}
		}
		if req.wantFrame {
			return result{ef: ef.Clone()}
		}
		if req.packed {
			return result{enc: ef.AppendPacked(req.encInto[:0])}
		}
		return result{enc: ef.AppendTo(req.encInto[:0])}
	}
	return result{err: fmt.Errorf("server: unknown op %d", req.op)}
}

// submit enqueues one operation and waits for its result, honouring the
// session's backpressure mode.
func (s *Session) submit(req *request) result {
	s.lastUsed.Store(time.Now().UnixNano())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return result{err: ErrSessionClosed}
	}
	s.pending.Add(1)
	s.mu.Unlock()
	defer s.pending.Done()

	req.start = time.Now()
	req.reply = make(chan result, 1)
	if s.cfg.Block {
		select {
		case s.reqs <- req:
		case <-s.quit:
			return result{err: ErrSessionClosed}
		}
	} else {
		select {
		case s.reqs <- req:
		default:
			s.mgr.backlogRejects.Add(1)
			return result{err: ErrBacklog}
		}
	}
	// The worker serves every enqueued request, even during close: the
	// queue is only closed after all submitters have drained.
	return <-req.reply
}

// ID returns the manager-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Config returns the negotiated session configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// QueueDepth returns the number of queued (unserved) requests.
func (s *Session) QueueDepth() int { return len(s.reqs) }

// SetRegionLabels installs the capture workload for the next frame.
func (s *Session) SetRegionLabels(labels region.List) error {
	return s.submit(&request{op: OpSetLabels, labels: labels}).err
}

// SetRegionLabelsAt installs the capture workload and returns the first
// frame index that will be captured under it. Every frame with index >=
// the returned boundary observes the new labels; every earlier frame was
// captured under the previous workload — the update is serialized with
// in-flight captures by the session worker, so the boundary is exact.
func (s *Session) SetRegionLabelsAt(labels region.List) (uint64, error) {
	res := s.submit(&request{op: OpSetLabels, labels: labels})
	return res.seq, res.err
}

// Capture encodes one frame into the session's framebuffer.
func (s *Session) Capture(fr *frame.Frame) (rpx.CaptureStats, error) {
	res := s.submit(&request{op: OpCapture, frame: fr})
	return res.cs, res.err
}

// Decoded reconstructs the newest frame.
func (s *Session) Decoded() (*frame.Frame, error) {
	res := s.submit(&request{op: OpDecode})
	return res.fr, res.err
}

// DecodeWindow reconstructs a sub-rectangle of the newest frame.
func (s *Session) DecodeWindow(x, y, w, h int) (*frame.Frame, error) {
	res := s.submit(&request{op: OpDecodeWindow, window: wire4{x, y, w, h}})
	return res.fr, res.err
}

// LastEncoded returns the newest encoded frame. The caller owns the result:
// it is a deep copy made on the session worker and later captures never
// touch it.
func (s *Session) LastEncoded() (*core.EncodedFrame, error) {
	res := s.submit(&request{op: OpLastEncoded, wantFrame: true})
	return res.ef, res.err
}

// LastEncodedTo serializes the newest encoded frame as an RPXE container
// into dst (reusing its capacity, like append) and returns the result. The
// packed flag selects the v2 packed-metadata container; false emits the
// raw v1 reference form. The serialization happens on the session worker
// while the frame is stable, so no intermediate *EncodedFrame copy is made
// — this is the transport's zero-copy GET_ENCODED path.
func (s *Session) LastEncodedTo(dst []byte, packed bool) ([]byte, error) {
	res := s.submit(&request{op: OpLastEncoded, encInto: dst, packed: packed})
	return res.enc, res.err
}

// SystemStats snapshots the underlying pipeline's traffic counters without
// entering the request queue (safe per rpx.System's concurrency contract).
func (s *Session) SystemStats() rpx.SystemStats { return s.sys.Stats() }

// OnEvict registers a hook the idle janitor runs when it evicts this
// session — transports use it to close the connection so a handler blocked
// in a read wakes up and tears down. Calling it after eviction began is a
// no-op.
func (s *Session) OnEvict(hook func()) {
	s.mu.Lock()
	s.evictHook = hook
	s.mu.Unlock()
}

// IdleFor reports how long ago the session last served a request.
func (s *Session) IdleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastUsed.Load())
}

// evict closes an idle session on the janitor's behalf: it fires the
// transport hook first (waking any blocked reader) and then runs the normal
// drain-and-stop close path.
func (s *Session) evict() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	hook := s.evictHook
	s.mu.Unlock()
	s.mgr.sessionsEvicted.Add(1)
	if hook != nil {
		hook()
	}
	s.Close()
}

// Close drains the queue and stops the worker. Requests submitted after
// Close fail with ErrSessionClosed; requests already queued are served.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.quit)    // release blocked submitters
	s.pending.Wait() // all submitters have enqueued or bailed
	close(s.reqs)    // worker drains the remainder and exits
	<-s.done

	// The worker has exited, so no further publish can run: sealing the
	// subscriptions now lets their writers drain buffered frames and then
	// report the closure.
	s.closeSubscriptions()

	s.mgr.mu.Lock()
	delete(s.mgr.sessions, s.id)
	s.mgr.mu.Unlock()
	return nil
}

// Close shuts every session down and rejects future opens.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	if m.sweepQuit != nil {
		close(m.sweepQuit)
		<-m.sweepDone
	}
	for _, s := range open {
		s.Close()
	}
	return nil
}

// SessionsOpen returns the number of live sessions.
func (m *Manager) SessionsOpen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// QueueStat reports one session's queue occupancy in a Snapshot.
type QueueStat struct {
	SessionID uint64 `json:"session_id"`
	W         int    `json:"w"`
	H         int    `json:"h"`
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	Frames    int    `json:"frames_captured"`
}

// Snapshot is a point-in-time view of the whole manager, the payload of the
// STATS wire message (JSON-encoded).
type Snapshot struct {
	SessionsOpen    int                          `json:"sessions_open"`
	SessionsOpened  int64                        `json:"sessions_opened"`
	SessionsEvicted int64                        `json:"sessions_evicted"`
	FramesCaptured  int64                        `json:"frames_captured"`
	EncodedBytes    int64                        `json:"encoded_bytes"`
	DecodedFrames   int64                        `json:"decoded_frames"`
	BacklogRejects  int64                        `json:"backlog_rejects"`
	StreamSubsOpen  int                          `json:"stream_subs_open"`
	StreamPushed    int64                        `json:"stream_frames_pushed"`
	StreamDropped   int64                        `json:"stream_frames_dropped"`
	StreamInflight  int                          `json:"stream_inflight"`
	Queues          []QueueStat                  `json:"queues,omitempty"`
	OpLatency       map[string]HistogramSnapshot `json:"op_latency,omitempty"`
}

// Snapshot collects the manager-wide statistics. The manager lock is held
// only long enough to copy the session list; per-session stats are read
// outside it, so a stats scrape over many sessions never blocks Open/Close.
func (m *Manager) Snapshot() Snapshot {
	snap := Snapshot{
		SessionsOpened:  m.sessionsOpened.Load(),
		SessionsEvicted: m.sessionsEvicted.Load(),
		FramesCaptured:  m.framesCaptured.Load(),
		EncodedBytes:    m.encodedBytes.Load(),
		DecodedFrames:   m.decodedFrames.Load(),
		BacklogRejects:  m.backlogRejects.Load(),
		StreamSubsOpen:  m.SubscriptionsOpen(),
		StreamPushed:    m.streamPushed.Load(),
		StreamDropped:   m.streamDropped.Load(),
		StreamInflight:  m.StreamInflight(),
	}
	m.mu.Lock()
	snap.SessionsOpen = len(m.sessions)
	open := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		open = append(open, s)
	}
	m.mu.Unlock()
	for _, s := range open {
		snap.Queues = append(snap.Queues, QueueStat{
			SessionID: s.id,
			W:         s.cfg.W,
			H:         s.cfg.H,
			Depth:     s.QueueDepth(),
			Capacity:  s.cfg.QueueDepth,
			Frames:    s.SystemStats().FramesCaptured,
		})
	}
	sort.Slice(snap.Queues, func(i, j int) bool { return snap.Queues[i].SessionID < snap.Queues[j].SessionID })

	snap.OpLatency = make(map[string]HistogramSnapshot, int(numOps))
	for op := Op(0); op < numOps; op++ {
		hs := m.opHist[op].Snapshot()
		if hs.Count > 0 {
			snap.OpLatency[op.String()] = hs
		}
	}
	return snap
}
