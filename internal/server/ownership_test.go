package server

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/frame"
	"repro/internal/region"
)

// TestSessionLastEncodedAliasingRegression mirrors the rpx-level aliasing
// regression through the manager: a frame returned by Session.LastEncoded is
// the caller's — later captures by the session worker must never rewrite it.
func TestSessionLastEncodedAliasingRegression(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	sess, err := m.Open(SessionConfig{W: 64, H: 48, Format: frame.Gray8})
	if err != nil {
		t.Fatal(err)
	}
	labels := region.List{
		{X: 2, Y: 2, W: 30, H: 20, Stride: 1, Skip: 1},
		{X: 36, Y: 8, W: 20, H: 32, Stride: 2, Skip: 1},
	}
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Capture(testFrame(64, 48, frame.Gray8, 0)); err != nil {
		t.Fatal(err)
	}
	held, err := sess.LastEncoded()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := held.AppendTo(nil)
	enc, err := sess.LastEncodedTo(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, snapshot) {
		t.Fatal("LastEncodedTo bytes differ from the LastEncoded frame")
	}

	for i := 1; i <= 12; i++ {
		if _, err := sess.Capture(testFrame(64, 48, frame.Gray8, i*7)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(held.AppendTo(nil), snapshot) {
		t.Fatal("frame returned by Session.LastEncoded was mutated by later captures")
	}
	if !bytes.Equal(enc, snapshot) {
		t.Fatal("bytes returned by Session.LastEncodedTo were mutated by later captures")
	}
}

// TestSessionConcurrentCaptureEncodedStream drives one session from three
// sides at once — a producer capturing frames, a reader pulling serialized
// frames via LastEncodedTo, and a push subscriber draining its buffer — to
// let the race detector check the borrow-on-worker serialization paths.
func TestSessionConcurrentCaptureEncodedStream(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	sess, err := m.Open(SessionConfig{W: 64, H: 48, Format: frame.Gray8, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	labels := region.List{{X: 4, Y: 4, W: 48, H: 36, Stride: 1, Skip: 1}}
	if err := sess.SetRegionLabels(labels); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Capture(testFrame(64, 48, frame.Gray8, 0)); err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Subscribe(64, 4, false)
	if err != nil {
		t.Fatal(err)
	}

	const frames = 60
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 1; i <= frames; i++ {
			if _, err := sess.Capture(testFrame(64, 48, frame.Gray8, i)); err != nil {
				t.Error(err)
				return
			}
		}
		sess.Close() // seals the subscription; the drainer sees end-of-stream
	}()
	go func() {
		defer wg.Done()
		var scratch []byte
		for {
			enc, err := sess.LastEncodedTo(scratch[:0], false)
			if err != nil {
				return // session closed
			}
			scratch = enc
			if len(enc) == 0 {
				t.Error("LastEncodedTo returned empty bytes")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			items, _, ok := sub.Next()
			if !ok {
				return
			}
			for _, it := range items {
				if len(it.enc) == 0 {
					t.Error("published frame has empty encoding")
					return
				}
			}
			sub.Grant(len(items))
		}
	}()
	wg.Wait()
}
