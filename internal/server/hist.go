package server

import "repro/internal/obs"

// The latency histogram was absorbed into the shared observability layer
// (internal/obs) so the manager, the rpx public API, and the rpxd admin
// endpoint all report through one implementation. The aliases keep the
// server package's exported surface — and the STATS wire payload shape —
// unchanged.

// Histogram is a fixed-shape latency histogram with atomic buckets, safe
// for concurrent Observe and Snapshot without locks.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-friendly
// for the STATS wire reply.
type HistogramSnapshot = obs.HistogramSnapshot
