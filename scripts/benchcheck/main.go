// Command benchcheck gates hot-path allocation regressions in CI: it
// compares a freshly measured BENCH_hotpath.json against the committed
// baseline and fails when allocs/frame grew beyond tolerance.
//
// Only allocation counts are gated — they are deterministic properties of
// the code, while FPS varies with the host and would flake. The tolerances:
//
//   - pooled path: candidate <= baseline + 1.0 allocs/frame (absolute).
//     The pooled path's contract is ~0 allocs/frame in steady state, so a
//     full extra allocation per frame is already a real regression; the
//     slack absorbs pool warm-up noise at low frame counts.
//   - baseline (copy-heavy) path: candidate <= baseline * 1.5 + 2.0. It is
//     the reference arm, not a contract, but a blow-up there usually means
//     a shared layer started allocating.
//
// Rows are matched by session count; candidate rows without a baseline
// counterpart (or vice versa) are ignored, so a quick-scale candidate
// (sessions 1, 8) checks cleanly against a full-scale baseline (1, 8, 64).
//
// Usage:
//
//	benchcheck -baseline BENCH_hotpath.json -candidate /tmp/BENCH_hotpath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type hotpathDoc struct {
	Experiment string `json:"experiment"`
	Rows       []struct {
		Sessions       int     `json:"sessions"`
		BaselineAllocs float64 `json:"baseline_allocs_per_frame"`
		PooledAllocs   float64 `json:"pooled_allocs_per_frame"`
	} `json:"rows"`
}

func load(path string) (hotpathDoc, error) {
	var doc hotpathDoc
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Rows) == 0 {
		return doc, fmt.Errorf("%s: no rows", path)
	}
	return doc, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed baseline document")
	candidatePath := flag.String("candidate", "", "freshly measured document")
	pooledSlack := flag.Float64("pooled-slack", 1.0, "absolute allocs/frame slack on the pooled path")
	flag.Parse()
	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -candidate is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if base.Experiment != cand.Experiment {
		fmt.Fprintf(os.Stderr, "benchcheck: experiment mismatch: baseline %q, candidate %q\n",
			base.Experiment, cand.Experiment)
		os.Exit(2)
	}
	baseBySessions := map[int]int{}
	for i, r := range base.Rows {
		baseBySessions[r.Sessions] = i
	}
	failed := false
	compared := 0
	for _, c := range cand.Rows {
		bi, ok := baseBySessions[c.Sessions]
		if !ok {
			continue
		}
		b := base.Rows[bi]
		compared++
		if limit := b.PooledAllocs + *pooledSlack; c.PooledAllocs > limit {
			fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION sessions=%d pooled allocs/frame %.3f > %.3f (baseline %.3f + %.1f slack)\n",
				c.Sessions, c.PooledAllocs, limit, b.PooledAllocs, *pooledSlack)
			failed = true
		}
		if limit := b.BaselineAllocs*1.5 + 2.0; c.BaselineAllocs > limit {
			fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION sessions=%d baseline allocs/frame %.3f > %.3f (baseline %.3f * 1.5 + 2)\n",
				c.Sessions, c.BaselineAllocs, limit, b.BaselineAllocs)
			failed = true
		}
		fmt.Printf("benchcheck: sessions=%d pooled %.3f (baseline %.3f), copy-heavy %.3f (baseline %.3f)\n",
			c.Sessions, c.PooledAllocs, b.PooledAllocs, c.BaselineAllocs, b.BaselineAllocs)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no comparable rows between baseline and candidate")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchcheck: OK (%d rows within tolerance)\n", compared)
}
