#!/usr/bin/env sh
# Tier-1 gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Alloc gate: the steady-state zero-allocation contracts of the pooled hot
# path (mask popcount, pooled encode, wire framing, capture). Deliberately
# WITHOUT -race — the race runtime changes allocation counts, so these
# testing.AllocsPerRun assertions are only meaningful in a plain build.
echo "== alloc gate (AllocsPerRun, no -race)"
go test -count=1 -run='^TestAllocs' \
    ./internal/bitpack ./internal/core ./internal/wire ./rpx

# Faultnet smoke: replay the client/server fault-injection matrix with a
# pinned seed so any failure here reproduces bit-for-bit on a dev box with
# the same FAULTNET_SEED.
FAULTNET_SEED="${FAULTNET_SEED:-1234}"
echo "== faultnet smoke (seed ${FAULTNET_SEED})"
FAULTNET_SEED="$FAULTNET_SEED" go test -race -count=1 \
    -run='^(TestFaultMatrix|TestReconnectRecoversWithLabelsReplayed|TestBrokenSessionAfterTimeout)$' \
    ./rpx/client

# Admin endpoint smoke: boot the real daemon binary with -admin on an
# ephemeral port, then curl /healthz and /metrics. Fails on a non-200 reply
# or an empty/placeholder metrics payload.
echo "== admin endpoint smoke"
RPXD_BIN="$(mktemp -d)/rpxd"
RPXD_LOG="$(mktemp)"
go build -o "$RPXD_BIN" ./cmd/rpxd
"$RPXD_BIN" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$RPXD_LOG" &
RPXD_PID=$!
cleanup_rpxd() {
    kill "$RPXD_PID" 2>/dev/null || true
    wait "$RPXD_PID" 2>/dev/null || true
    rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
}
trap cleanup_rpxd EXIT INT TERM
ADMIN_ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    ADMIN_ADDR="$(sed -n 's/^rpxd: admin listening on //p' "$RPXD_LOG")"
    [ -n "$ADMIN_ADDR" ] && break
    sleep 0.25
done
if [ -z "$ADMIN_ADDR" ]; then
    echo "ci: rpxd admin endpoint never came up" >&2
    cat "$RPXD_LOG" >&2
    exit 1
fi
HEALTH="$(curl -fsS "http://$ADMIN_ADDR/healthz")"
case "$HEALTH" in
    *ok*) ;;
    *) echo "ci: unexpected /healthz body: $HEALTH" >&2; exit 1 ;;
esac
METRICS="$(curl -fsS "http://$ADMIN_ADDR/metrics")"
case "$METRICS" in
    *rpxd_sessions_open*) ;;
    *) echo "ci: /metrics missing rpxd_ series:" >&2; echo "$METRICS" >&2; exit 1 ;;
esac
kill -TERM "$RPXD_PID"
wait "$RPXD_PID"
trap - EXIT INT TERM
rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
echo "admin endpoint smoke: OK (admin at $ADMIN_ADDR)"

# Gateway smoke: boot 2 real rpxd backends and 1 rpxgw in front of them,
# then run the live 4-session capture/decode matrix through the gateway while
# SIGKILLing one backend mid-matrix. The test's candidate-set oracle asserts
# recovery: every op returns correct bytes or a typed error, and sessions
# resume on the survivor via HELLO + labels replay. Seed pinned so failures
# reproduce.
echo "== gateway smoke (seed ${FAULTNET_SEED})"
GW_DIR="$(mktemp -d)"
go build -o "$GW_DIR/rpxd" ./cmd/rpxd
go build -o "$GW_DIR/rpxgw" ./cmd/rpxgw
# Pre-create the logs: the address-extraction seds below may run before a
# backgrounded daemon has opened its stderr redirect.
: >"$GW_DIR/b1.log"; : >"$GW_DIR/b2.log"; : >"$GW_DIR/gw.log"
"$GW_DIR/rpxd" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$GW_DIR/b1.log" &
B1_PID=$!
"$GW_DIR/rpxd" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$GW_DIR/b2.log" &
B2_PID=$!
GW_PID=""
cleanup_gw() {
    kill "$B1_PID" "$B2_PID" $GW_PID 2>/dev/null || true
    wait "$B1_PID" "$B2_PID" $GW_PID 2>/dev/null || true
    rm -rf "$GW_DIR"
}
trap cleanup_gw EXIT INT TERM
rpxd_addr()  { sed -n 's/^rpxd: listening on \([^ ]*\).*/\1/p' "$1"; }
rpxd_admin() { sed -n 's/^rpxd: admin listening on //p' "$1"; }
B1_ADDR=""; B2_ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    B1_ADDR="$(rpxd_addr "$GW_DIR/b1.log")"
    B2_ADDR="$(rpxd_addr "$GW_DIR/b2.log")"
    [ -n "$B1_ADDR" ] && [ -n "$B2_ADDR" ] && break
    sleep 0.25
done
if [ -z "$B1_ADDR" ] || [ -z "$B2_ADDR" ]; then
    echo "ci: rpxd backends never came up" >&2
    cat "$GW_DIR/b1.log" "$GW_DIR/b2.log" >&2
    exit 1
fi
"$GW_DIR/rpxgw" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -backends "$B1_ADDR@$(rpxd_admin "$GW_DIR/b1.log"),$B2_ADDR@$(rpxd_admin "$GW_DIR/b2.log")" \
    -health-interval 250ms 2>"$GW_DIR/gw.log" &
GW_PID=$!
GW_ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    GW_ADDR="$(sed -n 's/^rpxgw: listening on \([^ ]*\).*/\1/p' "$GW_DIR/gw.log")"
    [ -n "$GW_ADDR" ] && break
    sleep 0.25
done
if [ -z "$GW_ADDR" ]; then
    echo "ci: rpxgw never came up" >&2
    cat "$GW_DIR/gw.log" >&2
    exit 1
fi
# Streaming smoke first (while both backends are still alive): a v3 push
# subscription relayed through the real rpxgw must deliver every frame in
# order and unsubscribe cleanly back to request/reply.
echo "== streaming smoke"
RPXGW_ADDR="$GW_ADDR" \
    go test -race -count=1 -run='^TestLiveGatewayStream$' ./cmd/rpxgw
echo "streaming smoke: OK (push stream relayed through $GW_ADDR)"
RPXGW_ADDR="$GW_ADDR" RPXGW_KILL_PID="$B2_PID" FAULTNET_SEED="$FAULTNET_SEED" \
    go test -race -count=1 -run='^TestLiveGatewayMatrix$' ./cmd/rpxgw
# The gateway must still be serving after losing a backend.
GW_ADMIN="$(sed -n 's/^rpxgw: admin listening on //p' "$GW_DIR/gw.log")"
GW_HEALTH="$(curl -fsS "http://$GW_ADMIN/healthz")"
case "$GW_HEALTH" in
    *ok*) ;;
    *) echo "ci: rpxgw unhealthy after backend kill: $GW_HEALTH" >&2; exit 1 ;;
esac
kill -TERM "$GW_PID" "$B1_PID" 2>/dev/null || true
wait "$GW_PID" "$B1_PID" 2>/dev/null || true
wait "$B2_PID" 2>/dev/null || true
trap - EXIT INT TERM
rm -rf "$GW_DIR"
echo "gateway smoke: OK (gateway at $GW_ADDR survived backend kill)"

# Fuzz smoke: a short budget per untrusted decode surface. Regressions the
# fuzzer finds land in testdata/fuzz/ seed corpora, which -race above then
# replays forever after.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzReadMessage$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadSubscribe$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadFramePush$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadEncodedFrame$' -fuzztime="$FUZZTIME" ./internal/core
go test -run='^$' -fuzz='^FuzzStreamReader$' -fuzztime="$FUZZTIME" ./internal/core
go test -run='^$' -fuzz='^FuzzMaskCodec$' -fuzztime="$FUZZTIME" ./internal/bitpack

echo "== ci: OK"
