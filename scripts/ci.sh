#!/usr/bin/env sh
# CI pipeline, split into named stages so local runs and the GitHub
# workflow execute the exact same commands:
#
#   scripts/ci.sh                  # all stages, in order
#   scripts/ci.sh tier1            # one stage
#   scripts/ci.sh alloc fuzz       # a subset, in the order given
#
# Stages:
#   tier1        go vet + go build + go test -race ./...
#   alloc        steady-state zero-allocation gates (AllocsPerRun, no -race)
#   fuzz         short fuzz budget per untrusted decode surface
#   smoke        live binaries: faultnet matrix, rpxd admin, rpxgw
#                relay/failover, and the rpxpolicy closed-loop smoke
#   bench-check  rpxbench -exp hotpath vs the committed BENCH_hotpath.json
#
# Every requested stage runs even after a failure; the run ends with a
# summary table and a nonzero exit if any stage failed.
set -u

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------- tier1

stage_tier1() {
    echo "== go vet ./..."
    go vet ./...

    echo "== go build ./..."
    go build ./...

    echo "== go test -race ./..."
    go test -race ./...
}

# ---------------------------------------------------------------- alloc

# The steady-state zero-allocation contracts of the pooled hot path (mask
# popcount, pooled encode, wire framing, capture). Deliberately WITHOUT
# -race — the race runtime changes allocation counts, so these
# testing.AllocsPerRun assertions are only meaningful in a plain build.
stage_alloc() {
    echo "== alloc gate (AllocsPerRun, no -race)"
    go test -count=1 -run='^TestAllocs' \
        ./internal/bitpack ./internal/core ./internal/wire ./rpx
}

# ----------------------------------------------------------------- fuzz

# A short budget per untrusted decode surface. Regressions the fuzzer
# finds land in testdata/fuzz/ seed corpora, which tier1's -race run then
# replays forever after.
stage_fuzz() {
    FUZZTIME="${FUZZTIME:-10s}"
    echo "== fuzz smoke (${FUZZTIME} per target)"
    go test -run='^$' -fuzz='^FuzzReadMessage$' -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz='^FuzzReadSubscribe$' -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz='^FuzzReadFramePush$' -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz='^FuzzReadEncodedFrame$' -fuzztime="$FUZZTIME" ./internal/core
    go test -run='^$' -fuzz='^FuzzStreamReader$' -fuzztime="$FUZZTIME" ./internal/core
    go test -run='^$' -fuzz='^FuzzMaskCodec$' -fuzztime="$FUZZTIME" ./internal/bitpack
}

# ---------------------------------------------------------------- smoke

stage_smoke() {
    # Faultnet smoke: replay the client/server fault-injection matrix with
    # a pinned seed so any failure here reproduces bit-for-bit on a dev
    # box with the same FAULTNET_SEED.
    FAULTNET_SEED="${FAULTNET_SEED:-1234}"
    echo "== faultnet smoke (seed ${FAULTNET_SEED})"
    FAULTNET_SEED="$FAULTNET_SEED" go test -race -count=1 \
        -run='^(TestFaultMatrix|TestReconnectRecoversWithLabelsReplayed|TestBrokenSessionAfterTimeout)$' \
        ./rpx/client

    # Admin endpoint smoke: boot the real daemon binary with -admin on an
    # ephemeral port, then curl /healthz and /metrics. Fails on a non-200
    # reply or an empty/placeholder metrics payload.
    echo "== admin endpoint smoke"
    RPXD_BIN="$(mktemp -d)/rpxd"
    RPXD_LOG="$(mktemp)"
    go build -o "$RPXD_BIN" ./cmd/rpxd
    "$RPXD_BIN" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$RPXD_LOG" &
    RPXD_PID=$!
    cleanup_rpxd() {
        kill "$RPXD_PID" 2>/dev/null || true
        wait "$RPXD_PID" 2>/dev/null || true
        rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
    }
    trap cleanup_rpxd EXIT INT TERM
    ADMIN_ADDR=""
    for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        ADMIN_ADDR="$(sed -n 's/^rpxd: admin listening on //p' "$RPXD_LOG")"
        [ -n "$ADMIN_ADDR" ] && break
        sleep 0.25
    done
    if [ -z "$ADMIN_ADDR" ]; then
        echo "ci: rpxd admin endpoint never came up" >&2
        cat "$RPXD_LOG" >&2
        exit 1
    fi
    HEALTH="$(curl -fsS "http://$ADMIN_ADDR/healthz")"
    case "$HEALTH" in
        *ok*) ;;
        *) echo "ci: unexpected /healthz body: $HEALTH" >&2; exit 1 ;;
    esac
    METRICS="$(curl -fsS "http://$ADMIN_ADDR/metrics")"
    case "$METRICS" in
        *rpxd_sessions_open*) ;;
        *) echo "ci: /metrics missing rpxd_ series:" >&2; echo "$METRICS" >&2; exit 1 ;;
    esac
    kill -TERM "$RPXD_PID"
    wait "$RPXD_PID"
    trap - EXIT INT TERM
    rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
    echo "admin endpoint smoke: OK (admin at $ADMIN_ADDR)"

    # Gateway smoke: boot 2 real rpxd backends and 1 rpxgw in front of
    # them, then run the live 4-session capture/decode matrix through the
    # gateway while SIGKILLing one backend mid-matrix. The test's
    # candidate-set oracle asserts recovery: every op returns correct
    # bytes or a typed error, and sessions resume on the survivor via
    # HELLO + labels replay. Seed pinned so failures reproduce.
    echo "== gateway smoke (seed ${FAULTNET_SEED})"
    GW_DIR="$(mktemp -d)"
    go build -o "$GW_DIR/rpxd" ./cmd/rpxd
    go build -o "$GW_DIR/rpxgw" ./cmd/rpxgw
    go build -o "$GW_DIR/rpxpolicy" ./cmd/rpxpolicy
    # Pre-create the logs: the address-extraction seds below may run
    # before a backgrounded daemon has opened its stderr redirect.
    : >"$GW_DIR/b1.log"; : >"$GW_DIR/b2.log"; : >"$GW_DIR/gw.log"
    "$GW_DIR/rpxd" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$GW_DIR/b1.log" &
    B1_PID=$!
    "$GW_DIR/rpxd" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$GW_DIR/b2.log" &
    B2_PID=$!
    GW_PID=""
    cleanup_gw() {
        kill "$B1_PID" "$B2_PID" $GW_PID 2>/dev/null || true
        wait "$B1_PID" "$B2_PID" $GW_PID 2>/dev/null || true
        rm -rf "$GW_DIR"
    }
    trap cleanup_gw EXIT INT TERM
    rpxd_addr()  { sed -n 's/^rpxd: listening on \([^ ]*\).*/\1/p' "$1"; }
    rpxd_admin() { sed -n 's/^rpxd: admin listening on //p' "$1"; }
    B1_ADDR=""; B2_ADDR=""
    for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        B1_ADDR="$(rpxd_addr "$GW_DIR/b1.log")"
        B2_ADDR="$(rpxd_addr "$GW_DIR/b2.log")"
        [ -n "$B1_ADDR" ] && [ -n "$B2_ADDR" ] && break
        sleep 0.25
    done
    if [ -z "$B1_ADDR" ] || [ -z "$B2_ADDR" ]; then
        echo "ci: rpxd backends never came up" >&2
        cat "$GW_DIR/b1.log" "$GW_DIR/b2.log" >&2
        exit 1
    fi
    "$GW_DIR/rpxgw" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
        -backends "$B1_ADDR@$(rpxd_admin "$GW_DIR/b1.log"),$B2_ADDR@$(rpxd_admin "$GW_DIR/b2.log")" \
        -health-interval 250ms 2>"$GW_DIR/gw.log" &
    GW_PID=$!
    GW_ADDR=""
    for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
        GW_ADDR="$(sed -n 's/^rpxgw: listening on \([^ ]*\).*/\1/p' "$GW_DIR/gw.log")"
        [ -n "$GW_ADDR" ] && break
        sleep 0.25
    done
    if [ -z "$GW_ADDR" ]; then
        echo "ci: rpxgw never came up" >&2
        cat "$GW_DIR/gw.log" >&2
        exit 1
    fi
    # Streaming smoke first (while both backends are still alive): a v3
    # push subscription relayed through the real rpxgw must deliver every
    # frame in order and unsubscribe cleanly back to request/reply.
    echo "== streaming smoke"
    RPXGW_ADDR="$GW_ADDR" \
        go test -race -count=1 -run='^TestLiveGatewayStream$' ./cmd/rpxgw
    echo "streaming smoke: OK (push stream relayed through $GW_ADDR)"
    # Policy-loop smoke (also while both backends are alive): the real
    # rpxpolicy binary subscribes to a producer session through the
    # gateway, pushes labels back, and the test asserts the capture rhythm
    # actually changed across >= 2 cycles while the decoded stream stays
    # byte-identical to an oracle decoder fed the same encoded frames.
    echo "== policy-loop smoke"
    RPXPOLICY_ADDR="$GW_ADDR" RPXPOLICY_BIN="$GW_DIR/rpxpolicy" \
        go test -race -count=1 -run='^TestLivePolicyLoop$' ./cmd/rpxpolicy
    echo "policy-loop smoke: OK (rpxpolicy steered a session through $GW_ADDR)"
    RPXGW_ADDR="$GW_ADDR" RPXGW_KILL_PID="$B2_PID" FAULTNET_SEED="$FAULTNET_SEED" \
        go test -race -count=1 -run='^TestLiveGatewayMatrix$' ./cmd/rpxgw
    # The gateway must still be serving after losing a backend.
    GW_ADMIN="$(sed -n 's/^rpxgw: admin listening on //p' "$GW_DIR/gw.log")"
    GW_HEALTH="$(curl -fsS "http://$GW_ADMIN/healthz")"
    case "$GW_HEALTH" in
        *ok*) ;;
        *) echo "ci: rpxgw unhealthy after backend kill: $GW_HEALTH" >&2; exit 1 ;;
    esac
    kill -TERM "$GW_PID" "$B1_PID" 2>/dev/null || true
    wait "$GW_PID" "$B1_PID" 2>/dev/null || true
    wait "$B2_PID" 2>/dev/null || true
    trap - EXIT INT TERM
    rm -rf "$GW_DIR"
    echo "gateway smoke: OK (gateway at $GW_ADDR survived backend kill)"
}

# ---------------------------------------------------------- bench-check

# Allocation-regression gate: re-measure the hot path and compare against
# the committed BENCH_hotpath.json baseline. Only allocs/frame are gated
# (FPS varies with the host); tolerances are documented in
# scripts/benchcheck/main.go.
stage_bench_check() {
    echo "== bench-check (hotpath allocs vs committed BENCH_hotpath.json)"
    BC_DIR="$(mktemp -d)"
    trap 'rm -rf "$BC_DIR"' EXIT INT TERM
    go build -o "$BC_DIR/rpxbench" ./cmd/rpxbench
    "$BC_DIR/rpxbench" -exp hotpath -scale quick -json "$BC_DIR"
    go run ./scripts/benchcheck \
        -baseline BENCH_hotpath.json -candidate "$BC_DIR/BENCH_hotpath.json"
    trap - EXIT INT TERM
    rm -rf "$BC_DIR"
}

# --------------------------------------------------------------- runner

STAGES="${*:-tier1 alloc fuzz smoke bench-check}"
SUMMARY=""
FAILED=0
for STAGE in $STAGES; do
    case "$STAGE" in
        tier1)       FN=stage_tier1 ;;
        alloc)       FN=stage_alloc ;;
        fuzz)        FN=stage_fuzz ;;
        smoke)       FN=stage_smoke ;;
        bench-check) FN=stage_bench_check ;;
        *)
            echo "ci: unknown stage '$STAGE' (want tier1|alloc|fuzz|smoke|bench-check)" >&2
            exit 2
            ;;
    esac
    echo "==== stage: $STAGE ===="
    START="$(date +%s)"
    if ( set -e; "$FN" ); then
        RESULT="PASS"
    else
        RESULT="FAIL"
        FAILED=1
    fi
    SUMMARY="${SUMMARY}$(printf '%-12s %-4s %4ss' "$STAGE" "$RESULT" "$(( $(date +%s) - START ))")
"
    echo "==== stage: $STAGE $RESULT ===="
done

echo ""
echo "==== ci summary ===="
printf '%s' "$SUMMARY"
if [ "$FAILED" -ne 0 ]; then
    echo "== ci: FAIL"
    exit 1
fi
echo "== ci: OK"
