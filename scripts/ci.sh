#!/usr/bin/env sh
# Tier-1 gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ci: OK"
