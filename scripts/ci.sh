#!/usr/bin/env sh
# Tier-1 gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Faultnet smoke: replay the client/server fault-injection matrix with a
# pinned seed so any failure here reproduces bit-for-bit on a dev box with
# the same FAULTNET_SEED.
FAULTNET_SEED="${FAULTNET_SEED:-1234}"
echo "== faultnet smoke (seed ${FAULTNET_SEED})"
FAULTNET_SEED="$FAULTNET_SEED" go test -race -count=1 \
    -run='^(TestFaultMatrix|TestReconnectRecoversWithLabelsReplayed|TestBrokenSessionAfterTimeout)$' \
    ./rpx/client

# Admin endpoint smoke: boot the real daemon binary with -admin on an
# ephemeral port, then curl /healthz and /metrics. Fails on a non-200 reply
# or an empty/placeholder metrics payload.
echo "== admin endpoint smoke"
RPXD_BIN="$(mktemp -d)/rpxd"
RPXD_LOG="$(mktemp)"
go build -o "$RPXD_BIN" ./cmd/rpxd
"$RPXD_BIN" -addr 127.0.0.1:0 -admin 127.0.0.1:0 2>"$RPXD_LOG" &
RPXD_PID=$!
cleanup_rpxd() {
    kill "$RPXD_PID" 2>/dev/null || true
    wait "$RPXD_PID" 2>/dev/null || true
    rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
}
trap cleanup_rpxd EXIT INT TERM
ADMIN_ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    ADMIN_ADDR="$(sed -n 's/^rpxd: admin listening on //p' "$RPXD_LOG")"
    [ -n "$ADMIN_ADDR" ] && break
    sleep 0.25
done
if [ -z "$ADMIN_ADDR" ]; then
    echo "ci: rpxd admin endpoint never came up" >&2
    cat "$RPXD_LOG" >&2
    exit 1
fi
HEALTH="$(curl -fsS "http://$ADMIN_ADDR/healthz")"
case "$HEALTH" in
    *ok*) ;;
    *) echo "ci: unexpected /healthz body: $HEALTH" >&2; exit 1 ;;
esac
METRICS="$(curl -fsS "http://$ADMIN_ADDR/metrics")"
case "$METRICS" in
    *rpxd_sessions_open*) ;;
    *) echo "ci: /metrics missing rpxd_ series:" >&2; echo "$METRICS" >&2; exit 1 ;;
esac
kill -TERM "$RPXD_PID"
wait "$RPXD_PID"
trap - EXIT INT TERM
rm -rf "$(dirname "$RPXD_BIN")" "$RPXD_LOG"
echo "admin endpoint smoke: OK (admin at $ADMIN_ADDR)"

# Fuzz smoke: a short budget per untrusted decode surface. Regressions the
# fuzzer finds land in testdata/fuzz/ seed corpora, which -race above then
# replays forever after.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzReadMessage$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadEncodedFrame$' -fuzztime="$FUZZTIME" ./internal/core
go test -run='^$' -fuzz='^FuzzStreamReader$' -fuzztime="$FUZZTIME" ./internal/core

echo "== ci: OK"
