#!/usr/bin/env sh
# Tier-1 gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Faultnet smoke: replay the client/server fault-injection matrix with a
# pinned seed so any failure here reproduces bit-for-bit on a dev box with
# the same FAULTNET_SEED.
FAULTNET_SEED="${FAULTNET_SEED:-1234}"
echo "== faultnet smoke (seed ${FAULTNET_SEED})"
FAULTNET_SEED="$FAULTNET_SEED" go test -race -count=1 \
    -run='^(TestFaultMatrix|TestReconnectRecoversWithLabelsReplayed|TestBrokenSessionAfterTimeout)$' \
    ./rpx/client

# Fuzz smoke: a short budget per untrusted decode surface. Regressions the
# fuzzer finds land in testdata/fuzz/ seed corpora, which -race above then
# replays forever after.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzReadMessage$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadEncodedFrame$' -fuzztime="$FUZZTIME" ./internal/core
go test -run='^$' -fuzz='^FuzzStreamReader$' -fuzztime="$FUZZTIME" ./internal/core

echo "== ci: OK"
