#!/usr/bin/env sh
# Tier-1 gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Fuzz smoke: a short budget per untrusted decode surface. Regressions the
# fuzzer finds land in testdata/fuzz/ seed corpora, which -race above then
# replays forever after.
FUZZTIME="${FUZZTIME:-10s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzReadMessage$' -fuzztime="$FUZZTIME" ./internal/wire
go test -run='^$' -fuzz='^FuzzReadEncodedFrame$' -fuzztime="$FUZZTIME" ./internal/core
go test -run='^$' -fuzz='^FuzzStreamReader$' -fuzztime="$FUZZTIME" ./internal/core

echo "== ci: OK"
