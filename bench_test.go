// Package bench regenerates every table and figure of the paper as Go
// benchmarks (one per artifact) and adds microbenchmarks and ablations for
// the design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute one full Quick-scale experiment per
// iteration and attach headline numbers as custom metrics, so `go test
// -bench` output doubles as a results summary. cmd/rpxbench prints the
// full tables.
package bench

import (
	"fmt"
	"testing"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/frame"
	"repro/internal/hwmodel"
	"repro/internal/region"
	"repro/internal/synth"
	"repro/rpx"
)

// --- One benchmark per paper artifact ---

// BenchmarkFig3_CaseStudy regenerates Fig. 3: the ORB-SLAM case study.
func BenchmarkFig3_CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RhythmicPixelFraction, "pixel-fraction")
		b.ReportMetric(r.RhythmicATE/r.FrameBasedATE, "ATE-ratio")
	}
}

// BenchmarkTable4_RegionStats regenerates Table 4: observed region
// statistics per task.
func BenchmarkTable4_RegionStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgRegions, "slam-avg-regions")
	}
}

// BenchmarkFig8_Traffic regenerates Fig. 8: throughput and footprint for
// every workload x baseline pair.
func BenchmarkFig8_Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var fch, rp10 float64
		for _, r := range rows {
			if r.Workload == "Visual SLAM" && r.System == "FCH" {
				fch = r.ThroughputMBps
			}
			if r.Workload == "Visual SLAM" && r.System == "RP10" {
				rp10 = r.ThroughputMBps
			}
		}
		b.ReportMetric(1-rp10/fch, "slam-traffic-reduction")
	}
}

// BenchmarkFig9a_SLAMAccuracy regenerates Fig. 9a.
func BenchmarkFig9a_SLAMAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9SLAM(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "RP10" {
				b.ReportMetric(r.ATE, "rp10-ate-px")
			}
		}
	}
}

// BenchmarkFig9b_PoseAccuracy regenerates Fig. 9b.
func BenchmarkFig9b_PoseAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9Pose(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "RP10" {
				b.ReportMetric(r.MAP*100, "rp10-mAP-pct")
			}
		}
	}
}

// BenchmarkFig9c_FaceAccuracy regenerates Fig. 9c.
func BenchmarkFig9c_FaceAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9Face(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "RP10" {
				b.ReportMetric(r.MAP*100, "rp10-mAP-pct")
			}
		}
	}
}

// BenchmarkTable5_EncoderScaling regenerates Table 5 (analytic model; the
// companion comparison-work benches below measure the designs' actual
// comparison counts).
func BenchmarkTable5_EncoderScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5()
		for _, r := range rows {
			if r.Design == "hybrid" && r.Regions == 1600 {
				b.ReportMetric(float64(r.LUTs), "hybrid-1600-LUTs")
			}
		}
	}
}

// BenchmarkEnergy_Model regenerates the §6.2 energy analysis.
func BenchmarkEnergy_Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Energy(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SavingsMJPerFrame, "savings-mJ-per-frame")
		b.ReportMetric(r.SavingsMW, "savings-mW")
	}
}

// BenchmarkAppendix_FrameProgressions regenerates Figs. 10-15.
func BenchmarkAppendix_FrameProgressions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Appendix(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		// Mean intermediate-frame fraction of the first series.
		s := series[0].Fractions
		var sum float64
		for _, f := range s[1 : len(s)-1] {
			sum += f
		}
		b.ReportMetric(100*sum/float64(len(s)-2), "intermediate-pixel-pct")
	}
}

// BenchmarkCLSweep_Tradeoff regenerates the cycle-length sweep.
func BenchmarkCLSweep_Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CLSweep(experiments.Quick, []int{5, 10, 15})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ThroughputMBps/rows[len(rows)-1].ThroughputMBps, "cl5-over-cl15-traffic")
	}
}

// --- Core microbenchmarks (§5.1, §6.3 runtime claims) ---

// benchLabels builds n scattered region labels over a w x h frame.
func benchLabels(n, w, h int) region.List {
	var ls region.List
	for i := 0; i < n; i++ {
		l, ok := region.Clip(region.Label{
			X: (i * 131) % (w - 80), Y: (i * 197) % (h - 80),
			W: 40 + i%80, H: 40 + (i*3)%80,
			Stride: 1 + i%3, Skip: 1 + i%3,
		}, w, h)
		if ok {
			ls = append(ls, l)
		}
	}
	return ls.SortByY()
}

// BenchmarkEncoder1080p measures streaming encode of a 1080p frame at
// several region counts — the 2 px/clock claim's software analogue.
func BenchmarkEncoder1080p(b *testing.B) {
	for _, n := range []int{16, 100, 400, 1600} {
		b.Run(fmt.Sprintf("regions-%d", n), func(b *testing.B) {
			fr := frame.New(1920, 1080, frame.Gray8)
			enc := core.NewEncoder(1920, 1080, frame.Gray8)
			if err := enc.SetRegionLabels(benchLabels(n, 1920, 1080)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(fr.SizeBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.EncodeFrame(fr, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSoftwareDecoder1080p measures full-frame decode at the paper's
// reference point: "a few ms of CPU time for a 1080p frame where 30% of the
// pixels are regional pixels", scaling linearly with regional share.
func BenchmarkSoftwareDecoder1080p(b *testing.B) {
	for _, pct := range []int{10, 30, 60, 100} {
		b.Run(fmt.Sprintf("regional-%dpct", pct), func(b *testing.B) {
			const w, h = 1920, 1080
			// One region covering pct% of the frame at full density.
			rh := h * pct / 100
			if rh < 1 {
				rh = 1
			}
			labels := region.List{{X: 0, Y: 0, W: w, H: rh, Stride: 1, Skip: 1}}
			fr := frame.New(w, h, frame.Gray8)
			enc := core.NewEncoder(w, h, frame.Gray8)
			if err := enc.SetRegionLabels(labels); err != nil {
				b.Fatal(err)
			}
			ef, err := enc.EncodeFrame(fr, 0)
			if err != nil {
				b.Fatal(err)
			}
			dec := core.NewDecoder(w, h, frame.Gray8)
			if err := dec.Push(ef); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(w * h))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeFrame(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeParallel measures row-band-sharded encode of a 1080p frame
// at several worker counts against the same 400-region workload as the
// sequential encoder bench. On a multi-core host (>= 4 cores) the workers-8
// case is expected to reach >= 2x the workers-1 throughput; the outputs are
// byte-identical regardless (see internal/core/differential_test.go).
func BenchmarkEncodeParallel(b *testing.B) {
	const w, h = 1920, 1080
	fr := frame.New(w, h, frame.Gray8)
	labels := benchLabels(400, w, h)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", n), func(b *testing.B) {
			enc := core.NewParallelEncoder(w, h, frame.Gray8, n)
			if err := enc.SetRegionLabels(labels); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(fr.SizeBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.EncodeFrame(fr, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeParallel measures row-band-sharded full-frame decode at
// several worker counts on the paper's 1080p/30%-regional reference point.
func BenchmarkDecodeParallel(b *testing.B) {
	const w, h = 1920, 1080
	labels := region.List{{X: 0, Y: 0, W: w, H: h * 30 / 100, Stride: 1, Skip: 1}}
	enc := core.NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(labels); err != nil {
		b.Fatal(err)
	}
	ef, err := enc.EncodeFrame(frame.New(w, h, frame.Gray8), 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", n), func(b *testing.B) {
			dec := core.NewDecoder(w, h, frame.Gray8, core.WithParallelism(n))
			if err := dec.Push(ef); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(w * h))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeFrame(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeWindow measures tiled accelerator-style window requests.
func BenchmarkDecodeWindow(b *testing.B) {
	const w, h = 1920, 1080
	enc := core.NewEncoder(w, h, frame.Gray8)
	if err := enc.SetRegionLabels(benchLabels(400, w, h)); err != nil {
		b.Fatal(err)
	}
	ef, err := enc.EncodeFrame(frame.New(w, h, frame.Gray8), 0)
	if err != nil {
		b.Fatal(err)
	}
	dec := core.NewDecoder(w, h, frame.Gray8)
	if err := dec.Push(ef); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeWindow((i*64)%(w-256), (i*48)%(h-256), 256, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSystem measures the full capture+decode loop through the
// public API on a synthetic scene.
func BenchmarkEndToEndSystem(b *testing.B) {
	const w, h = 640, 480
	world := synth.NewWorld(1024, 1024, 1)
	in := world.Render(synth.Pose{X: 512, Y: 512}, w, h)
	sys, err := rpx.NewSystem(w, h, rpx.Gray8)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.SetRegionLabels(benchLabels(200, w, h)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w * h))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Capture(in); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Decoded(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationComparison compares the comparison-engine designs'
// region-compare work on identical workloads (Table 5's motivation).
func BenchmarkAblationComparison(b *testing.B) {
	const w, h = 1280, 720
	labels := benchLabels(400, w, h)
	for _, d := range []core.Design{core.DesignHybrid, core.DesignParallel, core.DesignNaive} {
		b.Run(d.String(), func(b *testing.B) {
			var stats core.CompareStats
			for i := 0; i < b.N; i++ {
				_, stats = core.ClassifyFrame(w, h, i, labels, d)
			}
			b.ReportMetric(float64(stats.TotalCompares())/float64(w*h), "compares/pixel")
		})
	}
}

// BenchmarkAblationLayout compares the raster-packed encoded layout against
// the grouped per-region (ROI-style) layout on overlapping regions: the
// grouped layout duplicates overlap bytes (§3.2's argument).
func BenchmarkAblationLayout(b *testing.B) {
	const w, h = 1280, 720
	// Heavily overlapping labels, as feature-based policies produce.
	var labels region.List
	for i := 0; i < 300; i++ {
		l, ok := region.Clip(region.Label{
			X: (i * 37) % (w - 200), Y: (i * 53) % (h - 200),
			W: 180, H: 180, Stride: 1, Skip: 1,
		}, w, h)
		if ok {
			labels = append(labels, l)
		}
	}
	labels.SortByY()
	fr := frame.New(w, h, frame.Gray8)

	b.Run("raster-packed", func(b *testing.B) {
		enc := core.NewEncoder(w, h, frame.Gray8)
		if err := enc.SetRegionLabels(labels); err != nil {
			b.Fatal(err)
		}
		var bytes int
		for i := 0; i < b.N; i++ {
			ef, err := enc.EncodeFrame(fr, 0)
			if err != nil {
				b.Fatal(err)
			}
			bytes = ef.TotalBytes()
		}
		b.ReportMetric(float64(bytes)/1e6, "MB/frame")
	})
	b.Run("grouped-roi", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes = 0
			for _, l := range labels {
				bytes += int64(l.Area()) // each region stored separately
			}
		}
		b.ReportMetric(float64(bytes)/1e6, "MB/frame")
	})
}

// BenchmarkAblationDecodeSearch compares EncMask-metadata decode against a
// decoder that searches region labels per pixel (the scalability argument
// of §3.3: label search grows with region count, metadata does not).
func BenchmarkAblationDecodeSearch(b *testing.B) {
	const w, h = 1280, 720
	for _, n := range []int{16, 100, 400} {
		labels := benchLabels(n, w, h)
		enc := core.NewEncoder(w, h, frame.Gray8)
		if err := enc.SetRegionLabels(labels); err != nil {
			b.Fatal(err)
		}
		ef, err := enc.EncodeFrame(frame.New(w, h, frame.Gray8), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("encmask-%dregions", n), func(b *testing.B) {
			dec := core.NewDecoder(w, h, frame.Gray8)
			if err := dec.Push(ef); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeFrame(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("labelsearch-%dregions", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labelSearchDecode(ef, labels)
			}
		})
	}
}

// labelSearchDecode is the strawman decoder: for every pixel it scans the
// region label list to decide regionality, rather than reading the EncMask.
func labelSearchDecode(ef *core.EncodedFrame, labels region.List) *frame.Frame {
	out := frame.New(ef.W, ef.H, frame.Gray8)
	for y := 0; y < ef.H; y++ {
		for x := 0; x < ef.W; x++ {
			for _, l := range labels {
				if l.Contains(x, y) && l.ActiveAt(ef.FrameIndex) && l.OnStride(x, y) {
					if px, err := ef.PixelAt(x, y); err == nil {
						out.Pix[y*ef.W+x] = px[0]
					}
					break
				}
			}
		}
	}
	return out
}

// BenchmarkAblationHistoryDepth measures decode cost against the metadata
// scratchpad depth (the paper fixes 4; deeper history resolves longer skips
// at higher translation cost).
func BenchmarkAblationHistoryDepth(b *testing.B) {
	const w, h = 1280, 720
	labels := region.List{{X: 0, Y: 0, W: w, H: h, Stride: 1, Skip: 6}}
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			enc := core.NewEncoder(w, h, frame.Gray8)
			if err := enc.SetRegionLabels(labels); err != nil {
				b.Fatal(err)
			}
			dec := core.NewDecoder(w, h, frame.Gray8, core.WithHistoryDepth(depth))
			fr := frame.New(w, h, frame.Gray8)
			fr.Fill(128)
			for t := 0; t < depth+1; t++ { // frame 0 active, rest skipped
				ef, err := enc.EncodeFrame(fr, t)
				if err != nil {
					b.Fatal(err)
				}
				if err := dec.Push(ef); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeFrame(); err != nil {
					b.Fatal(err)
				}
			}
			st := dec.Stats()
			b.ReportMetric(float64(st.Black)/float64(st.PixelsRequested)*100, "unresolved-pct")
		})
	}
}

// BenchmarkAblationReconstructionQuality measures decoded-frame PSNR as a
// function of region stride on a textured scene: the quality ceiling that
// stride-based decimation (nearest-neighbor reconstruction) imposes, which
// is the accuracy side of the stride knob in Table 4.
func BenchmarkAblationReconstructionQuality(b *testing.B) {
	const w, h = 640, 480
	world := synth.NewWorld(1024, 1024, 6)
	in := world.Render(synth.Pose{X: 512, Y: 512}, w, h)
	for _, stride := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("stride-%d", stride), func(b *testing.B) {
			enc := core.NewEncoder(w, h, frame.Gray8)
			labels := region.List{{X: 0, Y: 0, W: w, H: h, Stride: stride, Skip: 1}}
			if err := enc.SetRegionLabels(labels); err != nil {
				b.Fatal(err)
			}
			dec := core.NewDecoder(w, h, frame.Gray8)
			var psnr float64
			for i := 0; i < b.N; i++ {
				ef, err := enc.EncodeFrame(in, 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := dec.Push(ef); err != nil {
					b.Fatal(err)
				}
				out, err := dec.DecodeFrame()
				if err != nil {
					b.Fatal(err)
				}
				psnr, err = frame.PSNR(in, out)
				if err != nil {
					b.Fatal(err)
				}
			}
			if psnr > 1000 {
				psnr = 99 // lossless (stride 1) reports +Inf
			}
			b.ReportMetric(psnr, "PSNR-dB")
		})
	}
}

// BenchmarkAblationRegionGrouping quantifies the paper's §3.4 claim that
// grouping features "into a smaller number of regions ... reduces task
// accuracy and memory efficiency": the same feature set captured as
// per-feature regions, as coalesced overlapping regions, and as k-means
// groups of 16 (the multi-ROI limit), reporting stored pixels per frame.
func BenchmarkAblationRegionGrouping(b *testing.B) {
	const w, h = 1280, 720
	// Feature-like clustered labels.
	var labels region.List
	for c := 0; c < 6; c++ {
		cx, cy := (c*211)%(w-200), (c*157)%(h-200)
		for i := 0; i < 60; i++ {
			l, ok := region.Clip(region.Label{
				X: cx + (i*37)%160, Y: cy + (i*53)%160,
				W: 50, H: 50, Stride: 1 + i%3, Skip: 1 + i%2,
			}, w, h)
			if ok {
				labels = append(labels, l)
			}
		}
	}
	labels.SortByY()
	variants := []struct {
		name string
		ls   region.List
	}{
		{"per-feature", labels},
		{"coalesced", region.MergeOverlapping(labels, 0.25, w, h)},
		{"grouped-16", region.ClusterKMeans(labels, 16, w, h, 1)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var stored int
			for i := 0; i < b.N; i++ {
				counts := core.CountCodes(w, h, 1, v.ls)
				stored = counts[bitpack.CodeR]
			}
			b.ReportMetric(float64(len(v.ls)), "regions")
			b.ReportMetric(float64(stored)/float64(w*h)*100, "stored-pixel-pct")
		})
	}
}

// BenchmarkHWModel exercises the analytic hardware model (cheap; included
// so -bench=. covers the whole reproduction surface).
func BenchmarkHWModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = hwmodel.EncoderResources(core.DesignHybrid, 1600)
		_ = hwmodel.DecoderResources(3840)
		_ = hwmodel.EncoderPowerMW(1600)
	}
}

// BenchmarkEncMaskCountR measures the decoder's hot popcount primitive.
func BenchmarkEncMaskCountR(b *testing.B) {
	m := bitpack.NewMask2(3840)
	m.Fill(500, 3000, bitpack.CodeR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.CountRRange(100, 3700)
	}
}
